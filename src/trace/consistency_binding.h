// Binding of client histories to the consistency spec (§6.5).
//
// "Later, trace validation was also applied to the consistency spec ...
// the consistency spec assumed knowledge of the transactions of all
// clients, whereas a trace is limited to the transactions of a single
// client. This required introducing logic to reconstruct all transactions
// based on observed transaction IDs."
//
// Each client event becomes a line over the consistency-spec state. The
// expanders reuse the spec's own actions and compose *reconstruction*
// steps in front of them: when a response references a log branch that
// does not exist yet (a leader election this client never saw) or
// observes transactions this client never submitted (another client's
// traffic), the binding inserts NewBranch / RwTxRequest / RwTxExecute
// steps, goal-directed toward the branch content the observed transaction
// ids imply. Transaction identity is the (term, index) pair — term is the
// branch, index the position among application transactions — on both
// sides, so no out-of-band id mapping is needed.
#pragma once

#include <vector>

#include "driver/session.h"
#include "spec/trace_validator.h"
#include "specs/consistency/spec.h"

namespace scv::trace
{
  /// Spec parameters for validating a client history: bounds sized to the
  /// history itself.
  specs::consistency::Params consistency_validation_params(
    const std::vector<driver::ClientEvent>& events);

  /// Translates a client history into per-line expanders over the
  /// consistency-spec state.
  std::vector<spec::TraceLineExpander<specs::consistency::State>>
  bind_consistency_trace(
    const std::vector<driver::ClientEvent>& events,
    const specs::consistency::Params& params);

  /// End-to-end: bind and validate a client history (T ∩ S ≠ ∅).
  spec::ValidationResult<specs::consistency::State>
  validate_consistency_trace(
    const std::vector<driver::ClientEvent>& events,
    spec::ValidationOptions options = {});
}
