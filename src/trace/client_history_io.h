// Serialization of client histories to the consistency-trace corpus.
//
// Load runs produce Session histories (the five client-observable message
// kinds of §5); persisting them as JSONL — one event per line, mirroring
// trace_io for implementation traces — turns every load run into corpus
// material that replays offline through the consistency trace validator
// (§6.5).
//
// The consistency spec's transaction identity is an 8-bit-packed
// TxId, so spec instances cap the modeled application transactions (see
// consistency_validation_params). history_prefix_within() cuts a history
// to the largest self-contained prefix under such a bound, letting
// arbitrarily long load histories validate as bounded prefixes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "driver/session.h"

namespace scv::trace
{
  /// One client event per line, in order.
  std::string client_history_to_jsonl(
    const std::vector<driver::ClientEvent>& events);

  /// Strict parse; nullopt on malformed input (sets *error_line, 1-based,
  /// when given). Blank lines are skipped.
  std::optional<std::vector<driver::ClientEvent>> client_history_from_jsonl(
    const std::string& text, size_t* error_line = nullptr);

  bool write_client_history(
    const std::string& path, const std::vector<driver::ClientEvent>& events);

  std::optional<std::vector<driver::ClientEvent>> read_client_history(
    const std::string& path);

  /// The largest history prefix whose transactions all have ids (and
  /// observation sets) within `max_txs` application transactions: events
  /// referencing positions beyond the bound end the prefix. Status events
  /// for transactions inside the prefix are kept; later requests are cut.
  std::vector<driver::ClientEvent> history_prefix_within(
    const std::vector<driver::ClientEvent>& events, size_t max_txs);
}
