// Binding of implementation traces to the consensus spec (§6.2) — the
// C++ analogue of the paper's Trace spec (Listing 5).
//
// Each trace line becomes a TraceLineExpander over the spec state:
//  * enablement conditions check the line's recorded node state against
//    the current spec state (IsEvent + commitIndex[snd] = ln.commit_idx);
//  * the expander reuses the high-level spec's own action transition
//    functions, parameterized by trace values;
//  * assertions on successor states constrain the nondeterminism (e.g.
//    the network must have gained an AppendEntriesRequest with a matching
//    number of entries);
//  * grains of atomicity are aligned by action composition: a higher
//    message term composes UpdateTerm with the handler (term
//    piggybacking, §6.2.1), a signature event composes pending
//    AppendRetirement steps with Sign, and events the spec performs
//    inside another action (becomeFollower, rollback, advanceCommit on a
//    follower, retire) validate as finite stuttering with state
//    assertions.
//
// Message loss and duplication are not recorded in traces; like the
// paper's IsFault · Next, callers can enable fault composition so each
// line may be preceded by a bounded number of drop/duplicate steps.
#pragma once

#include <cstdint>
#include <vector>

#include "spec/trace_validator.h"
#include "specs/consensus/spec.h"
#include "trace/event.h"

namespace scv::trace
{
  /// Spec model parameters suitable for validating a trace of a cluster
  /// bootstrapped with `initial_config`/`initial_leader`: bounds are
  /// effectively disabled (trace validation constrains the state space by
  /// itself) and spec-side bug flags can be injected to validate a trace
  /// against a deliberately wrong spec.
  specs::ccfraft::Params validation_params(
    const std::vector<uint64_t>& initial_config,
    uint64_t initial_leader,
    uint8_t n_nodes,
    consensus::BugFlags spec_bugs = {});

  /// Translates a *preprocessed* trace (no bootstrap events) into per-line
  /// expanders over the consensus spec state.
  std::vector<spec::TraceLineExpander<specs::ccfraft::State>>
  bind_consensus_trace(
    const std::vector<TraceEvent>& events,
    const specs::ccfraft::Params& params);

  struct ConsensusValidationOptions
  {
    spec::ValidationOptions search;
    /// Compose drop/duplicate fault steps before each line (for traces
    /// collected under lossy/duplicating networks).
    bool fault_composition = false;
  };

  /// End-to-end convenience: preprocess, bind, validate.
  spec::ValidationResult<specs::ccfraft::State> validate_consensus_trace(
    const std::vector<TraceEvent>& raw_events,
    const specs::ccfraft::Params& params,
    ConsensusValidationOptions options = {});
}
