#include "trace/event.h"

#include <array>
#include <cstring>

namespace scv::trace
{
  namespace
  {
    struct KindName
    {
      EventKind kind;
      const char* name;
    };

    // Short names follow the paper's log-statement vocabulary (sndAE,
    // recvAE, ...).
    constexpr std::array<KindName, 24> kind_names = {{
      {EventKind::Bootstrap, "bootstrap"},
      {EventKind::SendAppendEntries, "sndAE"},
      {EventKind::RecvAppendEntries, "recvAE"},
      {EventKind::SendAppendEntriesResponse, "sndAER"},
      {EventKind::RecvAppendEntriesResponse, "recvAER"},
      {EventKind::SendRequestVote, "sndRV"},
      {EventKind::RecvRequestVote, "recvRV"},
      {EventKind::SendRequestVoteResponse, "sndRVR"},
      {EventKind::RecvRequestVoteResponse, "recvRVR"},
      {EventKind::SendProposeVote, "sndPV"},
      {EventKind::RecvProposeVote, "recvPV"},
      {EventKind::BecomeCandidate, "becomeCandidate"},
      {EventKind::BecomeLeader, "becomeLeader"},
      {EventKind::BecomeFollower, "becomeFollower"},
      {EventKind::ClientRequest, "clientRequest"},
      {EventKind::EmitSignature, "signature"},
      {EventKind::AdvanceCommit, "advanceCommit"},
      {EventKind::ChangeConfiguration, "changeConfig"},
      {EventKind::CheckQuorumStepDown, "checkQuorum"},
      {EventKind::Rollback, "rollback"},
      {EventKind::Retire, "retire"},
      {EventKind::SendInstallSnapshot, "sndIS"},
      {EventKind::RecvInstallSnapshot, "recvIS"},
      {EventKind::CompactLedger, "compact"},
    }};
  }

  const char* to_string(EventKind kind)
  {
    for (const auto& kn : kind_names)
    {
      if (kn.kind == kind)
      {
        return kn.name;
      }
    }
    return "unknown";
  }

  std::optional<EventKind> event_kind_from_string(const std::string& s)
  {
    for (const auto& kn : kind_names)
    {
      if (s == kn.name)
      {
        return kn.kind;
      }
    }
    return std::nullopt;
  }

  json::Value TraceEvent::to_json() const
  {
    json::Object o;
    o.emplace_back("ts", json::Value(ts));
    o.emplace_back("kind", json::Value(std::string(to_string(kind))));
    o.emplace_back("node", json::Value(node));
    o.emplace_back("term", json::Value(term));
    o.emplace_back("log_len", json::Value(log_len));
    o.emplace_back("commit_idx", json::Value(commit_idx));
    if (peer != 0)
    {
      o.emplace_back("peer", json::Value(peer));
    }
    if (msg_term != 0)
    {
      o.emplace_back("msg_term", json::Value(msg_term));
    }
    if (prev_idx != 0)
    {
      o.emplace_back("prev_idx", json::Value(prev_idx));
    }
    if (prev_term != 0)
    {
      o.emplace_back("prev_term", json::Value(prev_term));
    }
    if (n_entries != 0)
    {
      o.emplace_back("n_entries", json::Value(n_entries));
    }
    if (last_idx != 0)
    {
      o.emplace_back("last_idx", json::Value(last_idx));
    }
    if (success)
    {
      o.emplace_back("success", json::Value(true));
    }
    if (!config.empty())
    {
      json::Array a;
      for (uint64_t n : config)
      {
        a.emplace_back(n);
      }
      o.emplace_back("config", json::Value(std::move(a)));
    }
    return json::Value(std::move(o));
  }

  std::optional<TraceEvent> TraceEvent::from_json(const json::Value& v)
  {
    if (!v.is_object())
    {
      return std::nullopt;
    }
    const json::Value* kind_field = v.find("kind");
    if (kind_field == nullptr || !kind_field->is_string())
    {
      return std::nullopt;
    }
    const auto kind = event_kind_from_string(kind_field->as_string());
    if (!kind)
    {
      return std::nullopt;
    }

    TraceEvent e;
    e.kind = *kind;
    const auto get_u64 = [&v](const char* key, uint64_t& out) {
      const json::Value* f = v.find(key);
      if (f != nullptr && f->is_int())
      {
        out = static_cast<uint64_t>(f->as_int());
      }
    };
    get_u64("ts", e.ts);
    get_u64("node", e.node);
    get_u64("peer", e.peer);
    get_u64("term", e.term);
    get_u64("log_len", e.log_len);
    get_u64("commit_idx", e.commit_idx);
    get_u64("msg_term", e.msg_term);
    get_u64("prev_idx", e.prev_idx);
    get_u64("prev_term", e.prev_term);
    get_u64("n_entries", e.n_entries);
    get_u64("last_idx", e.last_idx);
    const json::Value* success_field = v.find("success");
    if (success_field != nullptr && success_field->is_bool())
    {
      e.success = success_field->as_bool();
    }
    const json::Value* config_field = v.find("config");
    if (config_field != nullptr && config_field->is_array())
    {
      for (const auto& item : config_field->as_array())
      {
        if (!item.is_int())
        {
          return std::nullopt;
        }
        e.config.push_back(static_cast<uint64_t>(item.as_int()));
      }
    }
    return e;
  }

  std::string TraceEvent::to_jsonl() const
  {
    return to_json().dump();
  }

  std::optional<TraceEvent> TraceEvent::from_jsonl(const std::string& line)
  {
    const auto v = json::parse(line);
    if (!v)
    {
      return std::nullopt;
    }
    return from_json(*v);
  }
}
