#include "trace/preprocess.h"

namespace scv::trace
{
  std::vector<TraceEvent> preprocess(
    const std::vector<TraceEvent>& events, PreprocessStats* stats)
  {
    std::vector<TraceEvent> out;
    out.reserve(events.size());
    for (const auto& e : events)
    {
      if (e.kind == EventKind::Bootstrap)
      {
        if (stats != nullptr)
        {
          stats->dropped_bootstrap++;
        }
        continue;
      }
      if (!out.empty() && out.back() == e)
      {
        if (stats != nullptr)
        {
          stats->dropped_duplicates++;
        }
        continue;
      }
      out.push_back(e);
    }
    return out;
  }
}
