// Trace preprocessing (§6.1).
//
// "Before validation, implementation traces are preprocessed to exclude and
// de-duplicate events from the initial bootstrapping phase of a CCF
// network, as this phase is not modeled in our high-level consensus spec."
#pragma once

#include <vector>

#include "trace/event.h"

namespace scv::trace
{
  struct PreprocessStats
  {
    size_t dropped_bootstrap = 0;
    size_t dropped_duplicates = 0;
  };

  /// Removes bootstrap events and exact consecutive duplicates (a node can
  /// log the same bootstrap-phase state more than once). Events are assumed
  /// already ordered by the global clock; ties keep input order.
  std::vector<TraceEvent> preprocess(
    const std::vector<TraceEvent>& events, PreprocessStats* stats = nullptr);
}
