#include "trace/trace_io.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace scv::trace
{
  std::string to_jsonl(const std::vector<TraceEvent>& events)
  {
    std::string out;
    for (const auto& e : events)
    {
      out += e.to_jsonl();
      out.push_back('\n');
    }
    return out;
  }

  std::optional<std::vector<TraceEvent>> from_jsonl(
    const std::string& text, size_t* error_line)
  {
    std::vector<TraceEvent> out;
    size_t line_no = 0;
    for (const std::string& line : split(text, '\n'))
    {
      ++line_no;
      const std::string trimmed = trim(line);
      if (trimmed.empty())
      {
        continue;
      }
      auto event = TraceEvent::from_jsonl(trimmed);
      if (!event)
      {
        if (error_line != nullptr)
        {
          *error_line = line_no;
        }
        return std::nullopt;
      }
      out.push_back(std::move(*event));
    }
    return out;
  }

  bool write_file(const std::string& path, const std::vector<TraceEvent>& events)
  {
    std::ofstream f(path);
    if (!f)
    {
      return false;
    }
    f << to_jsonl(events);
    return static_cast<bool>(f);
  }

  std::optional<std::vector<TraceEvent>> read_file(const std::string& path)
  {
    std::ifstream f(path);
    if (!f)
    {
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << f.rdbuf();
    return from_jsonl(buffer.str());
  }
}
