// Implementation trace events (§6.1).
//
// The scenario driver replaces wall clocks with one global clock and the
// implementation logs a consistent snapshot of its state at well-defined,
// side-effect-free linearization points: the sending and receipt of every
// network message, and every high-level state transition (candidate →
// leader, commit advance, signature emission, …). Like the paper's driver,
// events record values that are "constant in space" — log *lengths* and
// terms, never the entries themselves.
//
// Events serialize to JSONL so traces can be written to disk, inspected,
// and replayed through the trace validator.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/json.h"

namespace scv::trace
{
  enum class EventKind : uint8_t
  {
    Bootstrap, // initial node/service creation; stripped by preprocessing
    SendAppendEntries,
    RecvAppendEntries,
    SendAppendEntriesResponse,
    RecvAppendEntriesResponse,
    SendRequestVote,
    RecvRequestVote,
    SendRequestVoteResponse,
    RecvRequestVoteResponse,
    SendProposeVote,
    RecvProposeVote,
    BecomeCandidate,
    BecomeLeader,
    BecomeFollower,
    ClientRequest,
    EmitSignature,
    AdvanceCommit,
    ChangeConfiguration,
    CheckQuorumStepDown,
    Rollback,
    Retire,
    /// Leader offers its covering snapshot to a lagging follower
    /// (last_idx = snapshot index, prev_term = snapshot term).
    SendInstallSnapshot,
    /// Follower receives the offer (pre-state; fields mirror the send).
    RecvInstallSnapshot,
    /// Node drops entry bodies at and below its snapshot
    /// (last_idx = compaction point).
    CompactLedger,
  };

  const char* to_string(EventKind kind);
  std::optional<EventKind> event_kind_from_string(const std::string& s);

  /// One trace line. Field use depends on the kind; unused fields keep
  /// their defaults and are omitted from the JSON encoding.
  struct TraceEvent
  {
    uint64_t ts = 0; // global clock
    EventKind kind = EventKind::Bootstrap;
    uint64_t node = 0; // acting node
    uint64_t peer = 0; // message counterpart, when applicable
    uint64_t term = 0; // acting node's current term after the step
    uint64_t log_len = 0; // acting node's log length after the step
    uint64_t commit_idx = 0; // acting node's commit index after the step

    // Message-specific fields.
    uint64_t msg_term = 0;
    uint64_t prev_idx = 0;
    uint64_t prev_term = 0;
    uint64_t n_entries = 0;
    uint64_t last_idx = 0;
    bool success = false;

    // Configuration-change payload (sorted node ids).
    std::vector<uint64_t> config;

    [[nodiscard]] json::Value to_json() const;
    static std::optional<TraceEvent> from_json(const json::Value& v);

    [[nodiscard]] std::string to_jsonl() const;
    static std::optional<TraceEvent> from_jsonl(const std::string& line);

    bool operator==(const TraceEvent&) const = default;
  };

  /// Receives events as the implementation executes.
  using TraceSink = std::function<void(const TraceEvent&)>;
}
