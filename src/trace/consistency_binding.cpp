#include "trace/consistency_binding.h"

#include <algorithm>
#include <sstream>

namespace scv::trace
{
  using driver::ClientEvent;
  using driver::ClientEventKind;
  using spec::Emit;
  using spec::TraceLineExpander;
  using specs::consistency::Event;
  using specs::consistency::EvType;
  using specs::consistency::Params;
  using specs::consistency::State;
  using specs::consistency::TxId8;
  using specs::consistency::TxSt;

  namespace
  {
    /// Transaction identity on the spec side: (term = earliest branch
    /// containing the tx, index = its position there).
    struct Identity
    {
      uint8_t term = 0;
      uint8_t index = 0;

      bool operator==(const Identity&) const = default;
    };

    std::optional<Identity> spec_identity(const State& s, TxId8 tx)
    {
      for (size_t b = 0; b < s.branches.size(); ++b)
      {
        for (size_t i = 0; i < s.branches[b].size(); ++i)
        {
          if (s.branches[b][i] == tx)
          {
            return Identity{
              static_cast<uint8_t>(b + 1), static_cast<uint8_t>(i + 1)};
          }
        }
      }
      return std::nullopt;
    }

    /// The spec tx carrying the given identity, if executed.
    std::optional<TxId8> tx_with_identity(const State& s, Identity id)
    {
      if (id.term == 0 || id.term > s.branches.size())
      {
        return std::nullopt;
      }
      // The tx at (term, index) is identified by position in the earliest
      // branch: check the tx at that position and confirm its identity.
      const auto& branch = s.branches[id.term - 1];
      if (id.index == 0 || id.index > branch.size())
      {
        return std::nullopt;
      }
      const TxId8 tx = branch[id.index - 1];
      const auto actual = spec_identity(s, tx);
      if (actual && *actual == id)
      {
        return tx;
      }
      return std::nullopt;
    }

    Identity identity_of(const consensus::TxId& txid)
    {
      return Identity{
        static_cast<uint8_t>(txid.term), static_cast<uint8_t>(txid.index)};
    }

    /// The branch content (as identities) a response implies: observed
    /// predecessors followed (for read-write transactions) by the tx
    /// itself.
    std::vector<Identity> implied_content(const ClientEvent& e)
    {
      std::vector<Identity> out;
      for (const auto& o : e.observed)
      {
        out.push_back(identity_of(o));
      }
      if (e.kind == ClientEventKind::RwRes)
      {
        out.push_back(identity_of(e.txid));
      }
      return out;
    }

    /// Goal-directed reconstruction (§6.5): from `s`, emit every state in
    /// which branch `term` exists and its content realizes
    /// `target[0..target.size())` as identities — inserting NewBranch
    /// steps (elections this client never saw) and RwTxRequest+RwTxExecute
    /// pairs (other clients' transactions) as needed. Bounded by the
    /// target length.
    void reconstruct(
      const Params& p,
      const State& s,
      uint8_t term,
      const std::vector<Identity>& target,
      size_t depth,
      const std::function<void(const State&)>& done)
    {
      if (depth > 2 * target.size() + 8)
      {
        return;
      }

      // Create missing branches up to `term`, choosing only prefixes
      // consistent with the target content.
      if (s.branches.size() < term)
      {
        if (s.branches.size() >= p.max_branches)
        {
          return;
        }
        // NewBranch: any prefix of any branch containing the committed
        // prefix; keep only prefixes of the target.
        const auto consistent = [&](const State& s2) {
          const auto& nb = s2.branches.back();
          if (s2.branches.size() == term && nb.size() > target.size())
          {
            return false;
          }
          for (size_t k = 0; k < nb.size(); ++k)
          {
            const auto id = spec_identity(s2, nb[k]);
            if (
              s2.branches.size() == term &&
              (k >= target.size() || !id || !(*id == target[k])))
            {
              return false;
            }
          }
          return true;
        };
        // Enumerate NewBranch successors directly.
        std::vector<std::vector<TxId8>> seen;
        for (const auto& b : s.branches)
        {
          for (size_t len = 0; len <= b.size(); ++len)
          {
            std::vector<TxId8> prefix(
              b.begin(), b.begin() + static_cast<ptrdiff_t>(len));
            if (
              len < s.committed.size() ||
              !std::equal(
                s.committed.begin(), s.committed.end(), prefix.begin()))
            {
              continue;
            }
            if (std::find(seen.begin(), seen.end(), prefix) != seen.end())
            {
              continue;
            }
            seen.push_back(prefix);
            State s2 = s;
            s2.branches.push_back(prefix);
            if (consistent(s2))
            {
              reconstruct(p, s2, term, target, depth + 1, done);
            }
          }
        }
        return;
      }

      const auto& branch = s.branches[term - 1];
      // Verify what exists so far matches the target.
      if (branch.size() > target.size())
      {
        return;
      }
      for (size_t k = 0; k < branch.size(); ++k)
      {
        const auto id = spec_identity(s, branch[k]);
        if (!id || !(*id == target[k]))
        {
          return;
        }
      }
      if (branch.size() == target.size())
      {
        done(s);
        return;
      }

      // Fill the next position. Two cases: the needed tx already exists on
      // an earlier branch (then branch `term` should have forked with it —
      // unreachable here since forks copy prefixes; bail), or it is an
      // unknown tx executed on THIS branch.
      const Identity next = target[branch.size()];
      if (next.term != term)
      {
        // A tx inherited from an earlier branch must already be in the
        // prefix (forks copy prefixes); reaching here means the fork
        // point was wrong — dead end.
        return;
      }
      if (tx_with_identity(s, next).has_value())
      {
        return; // identity already taken elsewhere: inconsistent
      }
      // Reconstruct an unobserved client's transaction: request + execute.
      State s2 = s;
      const TxId8 fresh = s2.next_tx;
      s2.history.push_back({EvType::RwReq, fresh, 0, 0, 0, {}});
      s2.next_tx += 1;
      s2.branches[term - 1].push_back(fresh);
      reconstruct(p, s2, term, target, depth + 2, done);
    }

    /// Composes AdvanceCommit steps (0..k) before `done`, since commit
    /// movement is not logged in client histories.
    void with_commit_advance(
      const State& s,
      size_t max_steps,
      const std::function<void(const State&)>& done)
    {
      done(s);
      if (max_steps == 0)
      {
        return;
      }
      for (const auto& b : s.branches)
      {
        if (
          b.size() < s.committed.size() ||
          !std::equal(s.committed.begin(), s.committed.end(), b.begin()))
        {
          continue;
        }
        for (size_t len = s.committed.size() + 1; len <= b.size(); ++len)
        {
          State s2 = s;
          s2.committed.assign(
            b.begin(), b.begin() + static_cast<ptrdiff_t>(len));
          with_commit_advance(s2, max_steps - 1, done);
        }
      }
    }

    std::string describe(const ClientEvent& e)
    {
      std::ostringstream os;
      os << driver::to_string(e.kind) << " seq=" << e.client_seq;
      if (e.kind != ClientEventKind::RwReq && e.kind != ClientEventKind::RoReq)
      {
        os << " @" << e.txid.term << "." << e.txid.index;
      }
      if (e.kind == ClientEventKind::Status)
      {
        os << " " << consensus::to_string(e.status);
      }
      return os.str();
    }

    TraceLineExpander<State> bind_event(const ClientEvent& e, const Params& p)
    {
      TraceLineExpander<State> line;
      line.description = describe(e);

      switch (e.kind)
      {
        case ClientEventKind::RwReq:
          line.expand = [](const State& s, const Emit<State>& emit) {
            State s2 = s;
            s2.history.push_back({EvType::RwReq, s2.next_tx, 0, 0, 0, {}});
            s2.next_tx += 1;
            emit(s2);
          };
          break;

        case ClientEventKind::RoReq:
          line.expand = [](const State& s, const Emit<State>& emit) {
            State s2 = s;
            s2.history.push_back({EvType::RoReq, s2.next_tx, 0, 0, 0, {}});
            s2.next_tx += 1;
            emit(s2);
          };
          break;

        case ClientEventKind::RwRes:
          line.expand = [e, p](const State& s, const Emit<State>& emit) {
            const auto target = implied_content(e);
            const uint8_t term = static_cast<uint8_t>(e.txid.term);
            // The responding tx is the most recent *requested but not yet
            // executed* tx of this client — the last RwReq in the spec
            // history without an execution.
            TxId8 mine = 0;
            for (const Event& h : s.history)
            {
              if (h.type != EvType::RwReq)
              {
                continue;
              }
              bool executed = false;
              for (const auto& b : s.branches)
              {
                executed = executed ||
                  std::find(b.begin(), b.end(), h.tx) != b.end();
              }
              if (!executed)
              {
                mine = h.tx;
              }
            }
            if (mine == 0)
            {
              return;
            }
            // Reconstruct everything before this tx, then execute it and
            // respond.
            std::vector<Identity> prefix(target.begin(), target.end() - 1);
            reconstruct(p, s, term, prefix, 0, [&](const State& s1) {
              State s2 = s1;
              s2.branches[term - 1].push_back(mine);
              // The identity must come out right.
              const auto id = spec_identity(s2, mine);
              if (!id || !(*id == identity_of(e.txid)))
              {
                return;
              }
              Event res;
              res.type = EvType::RwRes;
              res.tx = mine;
              res.term = term;
              res.index = static_cast<uint8_t>(e.txid.index);
              for (const auto& o : e.observed)
              {
                const auto otx = tx_with_identity(s2, identity_of(o));
                if (!otx)
                {
                  return;
                }
                res.observed = specs::consistency::with_tx(res.observed, *otx);
              }
              s2.history.push_back(res);
              emit(s2);
            });
          };
          break;

        case ClientEventKind::RoRes:
          line.expand = [e, p](const State& s, const Emit<State>& emit) {
            const auto target = implied_content(e);
            const uint8_t term = static_cast<uint8_t>(e.txid.term);
            TxId8 mine = 0;
            for (const Event& h : s.history)
            {
              if (h.type != EvType::RoReq)
              {
                continue;
              }
              bool responded = false;
              for (const Event& h2 : s.history)
              {
                responded = responded ||
                  (h2.type == EvType::RoRes && h2.tx == h.tx);
              }
              if (!responded)
              {
                mine = h.tx;
              }
            }
            if (mine == 0)
            {
              return;
            }
            reconstruct(p, s, term, target, 0, [&](const State& s1) {
              State s2 = s1;
              Event res;
              res.type = EvType::RoRes;
              res.tx = mine;
              res.term = term;
              res.index = static_cast<uint8_t>(e.txid.index);
              for (const auto& o : e.observed)
              {
                const auto otx = tx_with_identity(s2, identity_of(o));
                if (!otx)
                {
                  return;
                }
                res.observed = specs::consistency::with_tx(res.observed, *otx);
              }
              s2.history.push_back(res);
              emit(s2);
            });
          };
          break;

        case ClientEventKind::Status:
          line.expand = [e](const State& s, const Emit<State>& emit) {
            // Commit movement is unlogged: compose AdvanceCommit steps
            // before the status message.
            with_commit_advance(s, 2, [&](const State& s1) {
              // Find the tx this status refers to by its response in the
              // spec history.
              for (const Event& h : s1.history)
              {
                if (
                  (h.type != EvType::RwRes && h.type != EvType::RoRes) ||
                  h.term != e.txid.term || h.index != e.txid.index)
                {
                  continue;
                }
                // Already has a status?
                bool done_already = false;
                for (const Event& h2 : s1.history)
                {
                  done_already = done_already ||
                    (h2.type == EvType::Status && h2.tx == h.tx);
                }
                if (done_already)
                {
                  continue;
                }
                // Apply the matching status rule.
                const auto& branch = s1.branches[h.term - 1];
                const bool covered = s1.committed.size() >= h.index;
                bool matches = covered;
                for (size_t k = 0; k < h.index && matches; ++k)
                {
                  matches = k < branch.size() &&
                    k < s1.committed.size() &&
                    branch[k] == s1.committed[k];
                }
                const bool want_committed =
                  e.status == consensus::TxStatus::Committed;
                if (!covered || (matches != want_committed))
                {
                  continue;
                }
                State s2 = s1;
                s2.history.push_back(
                  {EvType::Status,
                   h.tx,
                   0,
                   h.term,
                   h.index,
                   want_committed ? TxSt::Committed : TxSt::Invalid});
                emit(s2);
              }
            });
          };
          break;
      }
      return line;
    }
  }

  Params consistency_validation_params(const std::vector<ClientEvent>& events)
  {
    Params p;
    // Size the model to the history: the reconstruction may add as many
    // transactions as were ever observed.
    uint8_t max_term = 1;
    size_t txs = 0;
    for (const auto& e : events)
    {
      max_term = std::max(max_term, static_cast<uint8_t>(e.txid.term));
      if (
        e.kind == ClientEventKind::RwReq || e.kind == ClientEventKind::RoReq)
      {
        ++txs;
      }
      txs += e.observed.size();
    }
    p.max_rw_txs = static_cast<uint8_t>(std::min<size_t>(txs + 4, 14));
    p.max_ro_txs = p.max_rw_txs;
    p.max_branches = static_cast<uint8_t>(max_term + 1);
    p.include_observed_ro = false;
    return p;
  }

  std::vector<TraceLineExpander<State>> bind_consistency_trace(
    const std::vector<ClientEvent>& events, const Params& params)
  {
    std::vector<TraceLineExpander<State>> out;
    out.reserve(events.size());
    for (const auto& e : events)
    {
      out.push_back(bind_event(e, params));
    }
    return out;
  }

  spec::ValidationResult<State> validate_consistency_trace(
    const std::vector<ClientEvent>& events, spec::ValidationOptions options)
  {
    const Params p = consistency_validation_params(events);
    spec::TraceValidator<State> validator(
      {specs::consistency::initial_state()},
      bind_consistency_trace(events, p),
      options);
    return validator.run();
  }
}
