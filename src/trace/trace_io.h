// Reading and writing JSONL traces.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/event.h"

namespace scv::trace
{
  /// Serializes a trace, one JSON object per line.
  std::string to_jsonl(const std::vector<TraceEvent>& events);

  /// Parses a JSONL trace; returns nullopt (with the offending line number
  /// in *error_line when provided) on malformed input. Blank lines are
  /// skipped.
  std::optional<std::vector<TraceEvent>> from_jsonl(
    const std::string& text, size_t* error_line = nullptr);

  /// Writes a trace to a file; returns false on I/O failure.
  bool write_file(const std::string& path, const std::vector<TraceEvent>& events);

  /// Reads a trace from a file.
  std::optional<std::vector<TraceEvent>> read_file(const std::string& path);
}
