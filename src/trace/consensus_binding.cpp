#include "trace/consensus_binding.h"

#include <sstream>

#include "trace/preprocess.h"

namespace scv::trace
{
  using specs::ccfraft::Bits;
  using specs::ccfraft::MType;
  using specs::ccfraft::Nid;
  using specs::ccfraft::Params;
  using specs::ccfraft::SpecMessage;
  using specs::ccfraft::SpecNode;
  using specs::ccfraft::SRole;
  using specs::ccfraft::State;
  using spec::Emit;
  using spec::TraceLineExpander;
  namespace actions = specs::ccfraft::actions;

  specs::ccfraft::Params validation_params(
    const std::vector<uint64_t>& initial_config,
    uint64_t initial_leader,
    uint8_t n_nodes,
    consensus::BugFlags spec_bugs)
  {
    Params p;
    p.n_nodes = n_nodes;
    Bits bits = 0;
    for (const uint64_t n : initial_config)
    {
      bits = specs::ccfraft::with_node(bits, static_cast<Nid>(n));
    }
    p.initial_config = bits;
    p.initial_leader = static_cast<Nid>(initial_leader);
    p.bugs = spec_bugs;
    // Trace validation needs no model bounds: the trace itself constrains
    // the reachable states. Guards that exist purely for state-space
    // control (resend caps) are effectively disabled.
    p.max_term = 255;
    p.max_requests = 250;
    p.max_log_len = 255;
    p.max_batch = 255;
    p.max_network = 255;
    p.max_copies = 200;
    return p;
  }

  namespace
  {
    std::string describe(const TraceEvent& e)
    {
      std::ostringstream os;
      os << to_string(e.kind) << " node=" << e.node;
      if (e.peer != 0)
      {
        os << " peer=" << e.peer;
      }
      os << " term=" << e.term << " len=" << e.log_len
         << " commit=" << e.commit_idx;
      if (e.msg_term != 0)
      {
        os << " msg_term=" << e.msg_term;
      }
      return os.str();
    }

    /// Enablement condition on the current state (recv-style events log
    /// the pre-state): the acting node's recorded variables must match.
    bool pre_state_matches(const State& s, const TraceEvent& e)
    {
      const SpecNode& n = s.node(static_cast<Nid>(e.node));
      return n.current_term == e.term && n.len() == e.log_len &&
        n.commit_index == e.commit_idx;
    }

    /// Assertion on a successor state (snd/internal events log the
    /// post-state).
    bool post_state_matches(const State& s, const TraceEvent& e)
    {
      return pre_state_matches(s, e);
    }

    /// All in-flight messages matching a predicate (the trace identifies
    /// messages by their logged fields, not by identity).
    template <class Pred>
    std::vector<SpecMessage> matching_messages(const State& s, Pred pred)
    {
      std::vector<SpecMessage> out;
      for (const auto& [msg, count] : s.network)
      {
        if (pred(msg))
        {
          out.push_back(msg);
        }
      }
      return out;
    }

    /// Composes UpdateTerm(node) with a handler when the message term is
    /// above the node's current term — the piggybacked-term grain of
    /// atomicity (§6.2.1). Calls `next` on each state in which the
    /// handler is enabled term-wise.
    void with_update_term(
      const Params& p,
      const State& s,
      Nid node,
      uint64_t msg_term,
      const std::function<void(const State&)>& next)
    {
      if (s.node(node).current_term >= msg_term)
      {
        next(s);
        return;
      }
      actions::update_term(p, s, node, [&](const State& s2) {
        if (s2.node(node).current_term >= msg_term)
        {
          next(s2);
        }
      });
    }

    TraceLineExpander<State> bind_line(
      const TraceEvent& e,
      const Params& p,
      const std::optional<TraceEvent>& reply_lookahead)
    {
      const Nid node = static_cast<Nid>(e.node);
      const Nid peer = static_cast<Nid>(e.peer);

      TraceLineExpander<State> line;
      line.description = describe(e);

      switch (e.kind)
      {
        case EventKind::SendAppendEntries:
          // IsSendAppendEntries (Listing 5): enablement on current state,
          // reuse AppendEntries, assert the network gained a matching
          // request.
          line.expand = [e, p, node, peer](const State& s, const Emit<State>& emit) {
            if (!pre_state_matches(s, e))
            {
              return;
            }
            if (e.prev_idx + e.n_entries > s.node(node).len())
            {
              return; // the logged window does not exist in the spec log
            }
            SpecMessage m;
            m.type = MType::AeReq;
            m.from = node;
            m.to = peer;
            m.term = static_cast<uint8_t>(e.msg_term);
            m.prev_idx = static_cast<uint8_t>(e.prev_idx);
            m.prev_term = static_cast<uint8_t>(e.prev_term);
            m.commit = static_cast<uint8_t>(e.last_idx);
            for (uint64_t k = 0; k < e.n_entries; ++k)
            {
              m.entries.push_back(
                s.node(node).at(static_cast<uint8_t>(e.prev_idx + 1 + k)));
            }
            actions::append_entries(
              p, s, node, peer, static_cast<int>(e.n_entries),
              [&](const State& s2) {
                if (s2.message_count(m) > s.message_count(m))
                {
                  emit(s2);
                }
              });
          };
          break;

        case EventKind::RecvAppendEntries:
          // `reply` (when the trace shows the node answering next) pins
          // the handler's response — the Network!OneMoreMessage(m)
          // assertion of Listing 5 — so a stale identical ack elsewhere
          // in the network cannot mask a divergent reply.
          line.expand = [e, p, node, peer, reply = reply_lookahead](
                          const State& s, const Emit<State>& emit) {
            if (!pre_state_matches(s, e))
            {
              return;
            }
            const auto candidates = matching_messages(s, [&](const SpecMessage& m) {
              return m.type == MType::AeReq && m.from == peer &&
                m.to == node && m.term == e.msg_term &&
                m.prev_idx == e.prev_idx && m.prev_term == e.prev_term &&
                m.entries.size() == e.n_entries && m.commit == e.last_idx;
            });
            for (const SpecMessage& m : candidates)
            {
              with_update_term(p, s, node, e.msg_term, [&](const State& s1) {
                actions::handle_ae_request(p, s1, node, m, [&](const State& s2) {
                  if (reply.has_value())
                  {
                    SpecMessage r;
                    r.type = MType::AeResp;
                    r.from = node;
                    r.to = static_cast<Nid>(reply->peer);
                    r.term = static_cast<uint8_t>(reply->msg_term);
                    r.success = reply->success;
                    r.last_idx = static_cast<uint8_t>(reply->last_idx);
                    if (s2.message_count(r) <= s1.message_count(r))
                    {
                      return; // the spec's reply differs from the trace's
                    }
                  }
                  emit(s2);
                });
              });
            }
          };
          break;

        case EventKind::SendAppendEntriesResponse:
          // IsSendAppendEntriesResponse: finite stuttering — the response
          // entered the network during the receive handling; assert it is
          // there and the node state matches (UNCHANGED vars).
          line.expand = [e, node, peer](const State& s, const Emit<State>& emit) {
            if (!post_state_matches(s, e))
            {
              return;
            }
            SpecMessage m;
            m.type = MType::AeResp;
            m.from = node;
            m.to = peer;
            m.term = static_cast<uint8_t>(e.msg_term);
            m.success = e.success;
            m.last_idx = static_cast<uint8_t>(e.last_idx);
            if (s.message_count(m) > 0)
            {
              emit(s);
            }
          };
          break;

        case EventKind::RecvAppendEntriesResponse:
          line.expand = [e, p, node, peer](const State& s, const Emit<State>& emit) {
            if (!pre_state_matches(s, e))
            {
              return;
            }
            SpecMessage m;
            m.type = MType::AeResp;
            m.from = peer;
            m.to = node;
            m.term = static_cast<uint8_t>(e.msg_term);
            m.success = e.success;
            m.last_idx = static_cast<uint8_t>(e.last_idx);
            if (s.message_count(m) == 0)
            {
              return;
            }
            with_update_term(p, s, node, e.msg_term, [&](const State& s1) {
              actions::handle_ae_response(p, s1, node, m, emit);
            });
          };
          break;

        case EventKind::SendRequestVote:
          line.expand = [e, p, node, peer](const State& s, const Emit<State>& emit) {
            if (!pre_state_matches(s, e))
            {
              return;
            }
            actions::request_vote(p, s, node, peer, [&](const State& s2) {
              SpecMessage m;
              m.type = MType::RvReq;
              m.from = node;
              m.to = peer;
              m.term = static_cast<uint8_t>(e.msg_term);
              m.last_log_idx = static_cast<uint8_t>(e.prev_idx);
              m.last_log_term = static_cast<uint8_t>(e.prev_term);
              if (s2.message_count(m) > s.message_count(m))
              {
                emit(s2);
              }
            });
          };
          break;

        case EventKind::RecvRequestVote:
          line.expand = [e, p, node, peer, reply = reply_lookahead](
                          const State& s, const Emit<State>& emit) {
            if (!pre_state_matches(s, e))
            {
              return;
            }
            SpecMessage m;
            m.type = MType::RvReq;
            m.from = peer;
            m.to = node;
            m.term = static_cast<uint8_t>(e.msg_term);
            m.last_log_idx = static_cast<uint8_t>(e.prev_idx);
            m.last_log_term = static_cast<uint8_t>(e.prev_term);
            if (s.message_count(m) == 0)
            {
              return;
            }
            with_update_term(p, s, node, e.msg_term, [&](const State& s1) {
              actions::handle_rv_request(p, s1, node, m, [&](const State& s2) {
                if (reply.has_value())
                {
                  SpecMessage r;
                  r.type = MType::RvResp;
                  r.from = node;
                  r.to = static_cast<Nid>(reply->peer);
                  r.term = static_cast<uint8_t>(reply->msg_term);
                  r.success = reply->success;
                  if (s2.message_count(r) <= s1.message_count(r))
                  {
                    return;
                  }
                }
                emit(s2);
              });
            });
          };
          break;

        case EventKind::SendRequestVoteResponse:
          line.expand = [e, node, peer](const State& s, const Emit<State>& emit) {
            if (!post_state_matches(s, e))
            {
              return;
            }
            SpecMessage m;
            m.type = MType::RvResp;
            m.from = node;
            m.to = peer;
            m.term = static_cast<uint8_t>(e.msg_term);
            m.success = e.success;
            if (s.message_count(m) > 0)
            {
              emit(s);
            }
          };
          break;

        case EventKind::RecvRequestVoteResponse:
          line.expand = [e, p, node, peer](const State& s, const Emit<State>& emit) {
            if (!pre_state_matches(s, e))
            {
              return;
            }
            SpecMessage m;
            m.type = MType::RvResp;
            m.from = peer;
            m.to = node;
            m.term = static_cast<uint8_t>(e.msg_term);
            m.success = e.success;
            if (s.message_count(m) == 0)
            {
              return;
            }
            with_update_term(p, s, node, e.msg_term, [&](const State& s1) {
              actions::handle_rv_response(p, s1, node, m, emit);
            });
          };
          break;

        case EventKind::SendProposeVote:
          // The retiring leader's ProposeVote action both sends and
          // retires.
          line.expand = [e, p, node, peer](const State& s, const Emit<State>& emit) {
            if (!pre_state_matches(s, e))
            {
              return;
            }
            actions::propose_vote(p, s, node, [&](const State& s2) {
              SpecMessage m;
              m.type = MType::ProposeVote;
              m.from = node;
              m.to = peer;
              m.term = static_cast<uint8_t>(e.msg_term);
              if (s2.message_count(m) > s.message_count(m))
              {
                emit(s2);
              }
            });
          };
          break;

        case EventKind::RecvProposeVote:
          line.expand = [e, p, node, peer](const State& s, const Emit<State>& emit) {
            if (!pre_state_matches(s, e))
            {
              return;
            }
            SpecMessage m;
            m.type = MType::ProposeVote;
            m.from = peer;
            m.to = node;
            m.term = static_cast<uint8_t>(e.msg_term);
            if (s.message_count(m) == 0)
            {
              return;
            }
            actions::handle_propose_vote(p, s, node, m, emit);
          };
          break;

        case EventKind::BecomeCandidate:
          line.expand = [e, p, node](const State& s, const Emit<State>& emit) {
            actions::timeout(p, s, node, [&](const State& s2) {
              if (post_state_matches(s2, e))
              {
                emit(s2);
              }
            });
          };
          break;

        case EventKind::BecomeLeader:
          line.expand = [e, p, node](const State& s, const Emit<State>& emit) {
            actions::become_leader(p, s, node, [&](const State& s2) {
              if (post_state_matches(s2, e))
              {
                emit(s2);
              }
            });
          };
          break;

        case EventKind::BecomeFollower:
          // Stuttering: the role change happened inside UpdateTerm /
          // HandleAppendEntriesRequest / CheckQuorum. The event is logged
          // at the moment of the role change, which can precede appends
          // and commit advancement within the same handler, so the log
          // length and commit index are lower bounds on the spec state.
          line.expand = [e, node](const State& s, const Emit<State>& emit) {
            const SpecNode& n = s.node(node);
            if (
              n.current_term == e.term && n.len() >= e.log_len &&
              n.commit_index >= e.commit_idx &&
              n.role != SRole::Leader && n.role != SRole::Candidate)
            {
              emit(s);
            }
          };
          break;

        case EventKind::ClientRequest:
          line.expand = [e, p, node](const State& s, const Emit<State>& emit) {
            actions::client_request(p, s, node, [&](const State& s2) {
              if (post_state_matches(s2, e))
              {
                emit(s2);
              }
            });
          };
          break;

        case EventKind::EmitSignature:
          // A signature may follow retirement transactions the
          // implementation appended in the same commit step: compose
          // (AppendRetirement)* · Sign until the logged log length is
          // reached.
          line.expand = [e, p, node](const State& s, const Emit<State>& emit) {
            const std::function<void(const State&)> try_sign =
              [&](const State& s1) {
                actions::sign(p, s1, node, [&](const State& s2) {
                  if (post_state_matches(s2, e))
                  {
                    emit(s2);
                  }
                });
              };
            // Direct signature.
            try_sign(s);
            // With up to n_nodes retirement appends composed in front.
            std::vector<State> layer = {s};
            for (uint8_t k = 0; k < s.n_nodes; ++k)
            {
              std::vector<State> next_layer;
              for (const State& s1 : layer)
              {
                actions::append_retirement(p, s1, node, [&](const State& s2) {
                  next_layer.push_back(s2);
                  try_sign(s2);
                });
              }
              if (next_layer.empty())
              {
                break;
              }
              layer = std::move(next_layer);
            }
          };
          break;

        case EventKind::AdvanceCommit:
          // On a leader this is the AdvanceCommitIndex action; on a
          // follower the commit moved inside the AE receive handling and
          // this line is stuttering. Emit both possibilities.
          line.expand = [e, p, node](const State& s, const Emit<State>& emit) {
            if (pre_state_matches(s, e))
            {
              emit(s); // already advanced during a receive: stutter
            }
            actions::advance_commit(p, s, node, [&](const State& s2) {
              if (post_state_matches(s2, e))
              {
                emit(s2);
              }
            });
          };
          break;

        case EventKind::ChangeConfiguration:
          line.expand = [e, p, node](const State& s, const Emit<State>& emit) {
            Bits cfg = 0;
            for (const uint64_t n : e.config)
            {
              cfg = specs::ccfraft::with_node(cfg, static_cast<Nid>(n));
            }
            actions::change_configuration(
              p, s, node, cfg, [&](const State& s2) {
                if (post_state_matches(s2, e))
                {
                  emit(s2);
                }
              });
          };
          break;

        case EventKind::CheckQuorumStepDown:
          line.expand = [e, p, node](const State& s, const Emit<State>& emit) {
            actions::check_quorum(p, s, node, [&](const State& s2) {
              if (post_state_matches(s2, e))
              {
                emit(s2);
              }
            });
          };
          break;

        case EventKind::Rollback:
          // Rollback happens inside Timeout (before the becomeCandidate
          // line) or inside AE receive handling (after the recvAE line,
          // between the truncation and the re-append, so the recorded log
          // length is a lower bound on the atomic spec state). Accept as
          // stuttering with the soundly comparable fields only.
          line.expand = [e, node](const State& s, const Emit<State>& emit) {
            const SpecNode& n = s.node(node);
            if (
              n.current_term <= e.term && n.commit_index >= e.commit_idx &&
              n.len() >= e.last_idx)
            {
              emit(s);
            }
          };
          break;

        case EventKind::Retire:
          // Usually stuttering (commit_effects retired the node); a
          // leader with no nominee retires via the message-less
          // ProposeVote variant.
          line.expand = [e, p, node](const State& s, const Emit<State>& emit) {
            if (s.node(node).role == SRole::Retired && post_state_matches(s, e))
            {
              emit(s);
            }
            if (s.node(node).role == SRole::Leader)
            {
              actions::propose_vote(p, s, node, [&](const State& s2) {
                if (
                  s2.network_size() == s.network_size() &&
                  post_state_matches(s2, e))
                {
                  emit(s2);
                }
              });
            }
          };
          break;

        case EventKind::SendInstallSnapshot:
          // Like IsSendAppendEntries: enablement on current state, reuse
          // SendSnapshot, assert the network gained the matching offer
          // (last_idx = snapshot index, prev_term = snapshot term).
          line.expand = [e, p, node, peer](const State& s, const Emit<State>& emit) {
            if (!pre_state_matches(s, e))
            {
              return;
            }
            actions::send_snapshot(p, s, node, peer, [&](const State& s2) {
              const auto gained = matching_messages(s2, [&](const SpecMessage& m) {
                return m.type == MType::InstallSnap && m.from == node &&
                  m.to == peer && m.term == e.msg_term &&
                  m.last_idx == e.last_idx && m.prev_term == e.prev_term &&
                  s2.message_count(m) > s.message_count(m);
              });
              if (!gained.empty())
              {
                emit(s2);
              }
            });
          };
          break;

        case EventKind::RecvInstallSnapshot:
          // Mirrors RecvAppendEntries: the handler answers with an
          // ordinary AppendEntries response, which the trace's next
          // sndAER line pins.
          line.expand = [e, p, node, peer, reply = reply_lookahead](
                          const State& s, const Emit<State>& emit) {
            if (!pre_state_matches(s, e))
            {
              return;
            }
            const auto candidates = matching_messages(s, [&](const SpecMessage& m) {
              return m.type == MType::InstallSnap && m.from == peer &&
                m.to == node && m.term == e.msg_term &&
                m.last_idx == e.last_idx && m.prev_term == e.prev_term;
            });
            for (const SpecMessage& m : candidates)
            {
              with_update_term(p, s, node, e.msg_term, [&](const State& s1) {
                actions::handle_install_snapshot(
                  p, s1, node, m, [&](const State& s2) {
                    if (reply.has_value())
                    {
                      SpecMessage r;
                      r.type = MType::AeResp;
                      r.from = node;
                      r.to = static_cast<Nid>(reply->peer);
                      r.term = static_cast<uint8_t>(reply->msg_term);
                      r.success = reply->success;
                      r.last_idx = static_cast<uint8_t>(reply->last_idx);
                      if (s2.message_count(r) <= s1.message_count(r))
                      {
                        return;
                      }
                    }
                    emit(s2);
                  });
              });
            }
          };
          break;

        case EventKind::CompactLedger:
          // CompactLog only moves the ghost watermark; the logged
          // post-state (term, log length, commit) is unchanged by it.
          line.expand = [e, p, node](const State& s, const Emit<State>& emit) {
            actions::compact_log(
              p, s, node, static_cast<uint8_t>(e.last_idx),
              [&](const State& s2) {
                if (post_state_matches(s2, e))
                {
                  emit(s2);
                }
              });
            // Stuttering variant: an install (recvIS) both sets the
            // watermark and logs a separate compact line on some hosts;
            // accept the already-compacted state.
            if (
              s.node(node).snap_idx >= e.last_idx && pre_state_matches(s, e))
            {
              emit(s);
            }
          };
          break;

        case EventKind::Bootstrap:
          // Preprocessing strips these; tolerate as stuttering if present.
          line.expand = [](const State& s, const Emit<State>& emit) {
            emit(s);
          };
          break;
      }
      return line;
    }
  }

  namespace
  {
    /// The response a receive handler emits shows up as the acting node's
    /// next sndAER/sndRVR line (internal transitions logged in between —
    /// becomeFollower, rollback, advanceCommit, retire — happen within
    /// the same implementation step).
    std::optional<TraceEvent> reply_lookahead_for(
      const std::vector<TraceEvent>& events, size_t index)
    {
      const TraceEvent& e = events[index];
      // Snapshot installs are acknowledged with an ordinary
      // AppendEntries response, so recvIS expects the same reply kind.
      const EventKind wanted = e.kind == EventKind::RecvRequestVote ?
        EventKind::SendRequestVoteResponse :
        EventKind::SendAppendEntriesResponse;
      for (size_t k = index + 1; k < events.size(); ++k)
      {
        if (events[k].node != e.node)
        {
          continue;
        }
        switch (events[k].kind)
        {
          case EventKind::BecomeFollower:
          case EventKind::Rollback:
          case EventKind::AdvanceCommit:
          case EventKind::Retire:
            continue; // same implementation step
          default:
            break;
        }
        if (events[k].kind == wanted)
        {
          return events[k];
        }
        return std::nullopt; // the handler produced no reply
      }
      return std::nullopt;
    }
  }

  std::vector<TraceLineExpander<State>> bind_consensus_trace(
    const std::vector<TraceEvent>& events, const Params& params)
  {
    std::vector<TraceLineExpander<State>> out;
    out.reserve(events.size());
    for (size_t i = 0; i < events.size(); ++i)
    {
      std::optional<TraceEvent> reply;
      if (
        events[i].kind == EventKind::RecvAppendEntries ||
        events[i].kind == EventKind::RecvRequestVote ||
        events[i].kind == EventKind::RecvInstallSnapshot)
      {
        reply = reply_lookahead_for(events, i);
      }
      out.push_back(bind_line(events[i], params, reply));
    }
    return out;
  }

  spec::ValidationResult<State> validate_consensus_trace(
    const std::vector<TraceEvent>& raw_events,
    const Params& params,
    ConsensusValidationOptions options)
  {
    const auto events = preprocess(raw_events);
    spec::ValidationOptions search = options.search;
    if (options.fault_composition && search.max_faults_per_step == 0)
    {
      // The caller asked for fault composition but left the bound at
      // zero; one fault per line is the paper's default shape.
      search.max_faults_per_step = 1;
    }
    spec::TraceValidator<State> validator(
      {specs::ccfraft::initial_state(params)},
      bind_consensus_trace(events, params),
      search);
    if (options.fault_composition)
    {
      const Params p = params;
      validator.set_fault_expander(
        [p](const State& s, const Emit<State>& emit) {
          // IsFault (Listing 5): the network may lose or duplicate any
          // in-flight message between logged events.
          for (const auto& [msg, count] : s.network)
          {
            actions::drop_message(s, msg, emit);
            actions::duplicate_message(p, s, msg, emit);
          }
        });
    }
    return validator.run();
  }
}
