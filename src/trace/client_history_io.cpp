#include "trace/client_history_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/strings.h"

namespace scv::trace
{
  using consensus::TxId;
  using consensus::TxStatus;
  using driver::ClientEvent;
  using driver::ClientEventKind;

  namespace
  {
    std::optional<ClientEventKind> kind_from_string(const std::string& s)
    {
      if (s == "rwReq")
      {
        return ClientEventKind::RwReq;
      }
      if (s == "rwRes")
      {
        return ClientEventKind::RwRes;
      }
      if (s == "roReq")
      {
        return ClientEventKind::RoReq;
      }
      if (s == "roRes")
      {
        return ClientEventKind::RoRes;
      }
      if (s == "status")
      {
        return ClientEventKind::Status;
      }
      return std::nullopt;
    }

    std::optional<TxStatus> status_from_string(const std::string& s)
    {
      if (s == "UNKNOWN")
      {
        return TxStatus::Unknown;
      }
      if (s == "PENDING")
      {
        return TxStatus::Pending;
      }
      if (s == "COMMITTED")
      {
        return TxStatus::Committed;
      }
      if (s == "INVALID")
      {
        return TxStatus::Invalid;
      }
      return std::nullopt;
    }

    /// Parses "term.index" (TxId::to_string format).
    std::optional<TxId> txid_from_string(const std::string& s)
    {
      const auto parts = split(s, '.');
      if (parts.size() != 2 || parts[0].empty() || parts[1].empty())
      {
        return std::nullopt;
      }
      TxId txid;
      try
      {
        txid.term = std::stoull(parts[0]);
        txid.index = std::stoull(parts[1]);
      }
      catch (...)
      {
        return std::nullopt;
      }
      return txid;
    }

    std::string event_to_json(const ClientEvent& e)
    {
      json::Object obj;
      obj.emplace_back("kind", driver::to_string(e.kind));
      obj.emplace_back("seq", e.client_seq);
      obj.emplace_back("txid", e.txid.to_string());
      json::Array observed;
      observed.reserve(e.observed.size());
      for (const TxId& t : e.observed)
      {
        observed.emplace_back(t.to_string());
      }
      obj.emplace_back("observed", std::move(observed));
      if (e.kind == ClientEventKind::Status)
      {
        obj.emplace_back("status", consensus::to_string(e.status));
      }
      return json::Value(std::move(obj)).dump();
    }

    std::optional<ClientEvent> event_from_json(const std::string& line)
    {
      const auto value = json::parse(line);
      if (!value || !value->is_object())
      {
        return std::nullopt;
      }
      const auto* kind = value->find("kind");
      const auto* seq = value->find("seq");
      const auto* txid = value->find("txid");
      const auto* observed = value->find("observed");
      if (
        kind == nullptr || !kind->is_string() || seq == nullptr ||
        !seq->is_int() || seq->as_int() < 0 || txid == nullptr ||
        !txid->is_string() || observed == nullptr || !observed->is_array())
      {
        return std::nullopt;
      }
      ClientEvent e;
      const auto parsed_kind = kind_from_string(kind->as_string());
      const auto parsed_txid = txid_from_string(txid->as_string());
      if (!parsed_kind || !parsed_txid)
      {
        return std::nullopt;
      }
      e.kind = *parsed_kind;
      e.client_seq = static_cast<uint64_t>(seq->as_int());
      e.txid = *parsed_txid;
      for (const auto& t : observed->as_array())
      {
        if (!t.is_string())
        {
          return std::nullopt;
        }
        const auto parsed = txid_from_string(t.as_string());
        if (!parsed)
        {
          return std::nullopt;
        }
        e.observed.push_back(*parsed);
      }
      if (e.kind == ClientEventKind::Status)
      {
        const auto* status = value->find("status");
        if (status == nullptr || !status->is_string())
        {
          return std::nullopt;
        }
        const auto parsed = status_from_string(status->as_string());
        if (!parsed)
        {
          return std::nullopt;
        }
        e.status = *parsed;
      }
      return e;
    }
  }

  std::string client_history_to_jsonl(const std::vector<ClientEvent>& events)
  {
    std::string out;
    for (const auto& e : events)
    {
      out += event_to_json(e);
      out.push_back('\n');
    }
    return out;
  }

  std::optional<std::vector<ClientEvent>> client_history_from_jsonl(
    const std::string& text, size_t* error_line)
  {
    std::vector<ClientEvent> out;
    size_t line_no = 0;
    for (const std::string& line : split(text, '\n'))
    {
      ++line_no;
      const std::string trimmed = trim(line);
      if (trimmed.empty())
      {
        continue;
      }
      auto event = event_from_json(trimmed);
      if (!event)
      {
        if (error_line != nullptr)
        {
          *error_line = line_no;
        }
        return std::nullopt;
      }
      out.push_back(std::move(*event));
    }
    return out;
  }

  bool write_client_history(
    const std::string& path, const std::vector<ClientEvent>& events)
  {
    std::ofstream f(path);
    if (!f)
    {
      return false;
    }
    f << client_history_to_jsonl(events);
    return static_cast<bool>(f);
  }

  std::optional<std::vector<ClientEvent>> read_client_history(
    const std::string& path)
  {
    std::ifstream f(path);
    if (!f)
    {
      return std::nullopt;
    }
    std::stringstream buffer;
    buffer << f.rdbuf();
    return client_history_from_jsonl(buffer.str());
  }

  std::vector<ClientEvent> history_prefix_within(
    const std::vector<ClientEvent>& events, size_t max_txs)
  {
    std::vector<ClientEvent> out;
    for (const auto& e : events)
    {
      const bool within =
        e.txid.index <= max_txs && e.observed.size() <= max_txs;
      const bool is_response = e.kind == ClientEventKind::RwRes ||
        e.kind == ClientEventKind::RoRes;
      if (is_response && !within)
      {
        // First transaction past the bound: its request (already copied)
        // leaves the prefix with it, and everything later is cut.
        std::erase_if(out, [&](const ClientEvent& prev) {
          return prev.client_seq == e.client_seq;
        });
        break;
      }
      out.push_back(e);
    }
    return out;
  }
}
