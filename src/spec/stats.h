// Exploration statistics shared by the model checker, simulator and trace
// validator; these are the numbers Table 1 reports (states explored, states
// per minute).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace scv::spec
{
  struct ExplorationStats
  {
    uint64_t distinct_states = 0;
    uint64_t generated_states = 0; // including duplicates
    uint64_t transitions = 0;
    /// Generated states that dedup'd against an already-known state — the
    /// fingerprint-store hit count. generated == distinct + duplicate for
    /// engines that insert every generated state.
    uint64_t duplicate_states = 0;
    /// DFS trace validation: dead-end memo lookups that pruned a whole
    /// subtree (also counted in duplicate_states). In the work-stealing
    /// parallel DFS these include prunes seeded by *other* workers'
    /// proven-dead subtrees — the cross-worker sharing the shared memo
    /// table buys.
    uint64_t memo_hits = 0;
    /// Work-stealing engines: work items taken from another worker's
    /// deque. Zero for sequential runs and for engines on the fork-join
    /// pool.
    uint64_t steals = 0;
    /// Campaign runs: states adopted from another engine's discoveries to
    /// start this run — frontier records seeding a checker BFS, or walk
    /// starts drawn from a checker frontier by the simulator. Zero for
    /// standalone runs.
    uint64_t seeded_states = 0;
    /// Symmetry reduction (EngineOptions::symmetry): states run through
    /// the canonicalizer before fingerprinting, and how many of those
    /// actually relabeled (a non-identity orbit representative — i.e.
    /// states the reduction could fold onto a sibling). Zero when
    /// symmetry is off or the spec carries no group.
    uint64_t canonicalized_states = 0;
    uint64_t symmetry_hits = 0;
    uint64_t max_depth = 0;
    /// State-store footprint at the end of the run: resident bytes
    /// (index + hot arena + bodies), bytes spilled to disk, and index
    /// rehashes. Snapshots of the engine's store, not additive across
    /// phases sharing one store — absorb_counts() takes the max.
    uint64_t store_bytes = 0;
    uint64_t spilled_bytes = 0;
    uint64_t rehash_count = 0;
    double seconds = 0.0;
    /// The wall-clock allotment this run was given (its
    /// time_budget_seconds), when finite; 0 for unlimited runs. Under a
    /// TimeBox campaign this makes budget reassignment visible: a phase
    /// fed another phase's leftover shows budget_seconds above its naive
    /// share of the box.
    double budget_seconds = 0.0;
    bool complete = false; // exhausted the (constrained) state space
    /// Transitions taken per action — TLC-style action coverage; an
    /// action stuck at zero usually means a guard is wrong or the model
    /// bounds starve it.
    std::map<std::string, uint64_t> action_coverage;

    [[nodiscard]] double states_per_minute() const;
    [[nodiscard]] double states_per_second() const;
    [[nodiscard]] std::string summary() const;
    /// One "name: count" line per action, sorted by count descending.
    [[nodiscard]] std::string coverage_report() const;
    /// Accumulates another run's counting fields (generated, transitions,
    /// max depth, action coverage) into this one. Used when merging
    /// per-worker stats; distinct_states, seconds and complete carry
    /// cross-worker semantics the caller must settle itself.
    void absorb_counts(const ExplorationStats& other);
  };
}
