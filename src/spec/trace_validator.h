// Generic trace validation engine (§6), built on the exploration core.
//
// Checks T ∩ S ≠ ∅: given a sequence of per-trace-line expanders (each
// enumerating the spec transitions consistent with that line), search for
// at least one spec behavior that matches the whole trace. Faults that are
// not recorded in the trace (message drops) are handled by the Expander's
// fault composition before each step, mirroring the paper's
// IsFault · Next composition (Listing 5).
//
// Two search modes, reproducing §6.4:
//  * BFS computes the full frontier of candidate spec states line by line —
//    complete but can explode with nondeterminism. The frontier lives in a
//    ShardedStateStore (dedup scoped per line by salting the fingerprint
//    with the line number) whose predecessor links reconstruct a full
//    witness behavior on success; expansion of each line is split across a
//    WorkerPool (ValidationOptions::threads, same semantics as
//    CheckLimits::threads — threads=1 is the bit-identical sequential
//    reference).
//  * DFS looks for a single witness behavior with memoized dead ends —
//    "orders of magnitude faster", which is what made trace validation
//    usable in CI. The search runs an explicit frame stack (no recursion),
//    so production traces of any length cannot overflow the C stack. At
//    threads > 1 the same search runs work-stealing: workers own deques of
//    unexplored subtrees (work_stealing_pool.h), the (line, fingerprint)
//    dead-end memo is a shared lock-striped StripedKeySet so one worker's
//    proven-dead subtree prunes everyone, and the first witness wins via
//    the Budget cooperative-stop flag. threads = 1 takes the sequential
//    code path unchanged — bit-identical verdicts, witness, and
//    diagnostics.
//
// On failure there is no counterexample (§6.3) — instead the result carries
// the paper's diagnostics: the deepest line matched, the candidate states
// at that line (the "unsatisfied breakpoint" view, capped by
// max_diagnostic_states in DFS), and per-line frontier sizes.
//
// All limits route through Budget (budget_caps()); there is no private
// deadline arithmetic in this engine.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include "spec/budget.h"
#include "spec/engine.h"
#include "spec/expander.h"
#include "spec/sharded_state_store.h"
#include "spec/spec.h"
#include "spec/stats.h"
#include "spec/work_stealing_pool.h"
#include "spec/worker_pool.h"

namespace scv::spec
{
  /// Expander for one trace line: from a candidate spec state, emit every
  /// spec successor consistent with the line.
  template <SpecState S>
  struct TraceLineExpander
  {
    std::string description; // e.g. "sndAE node=1 peer=2"
    std::function<void(const S&, const Emit<S>&)> expand;
  };

  enum class SearchMode
  {
    Bfs,
    Dfs,
  };

  template <SpecState S>
  struct ValidationResult : EngineReport
  {
    ValidationResult()
    {
      // A validation run is a search for a witness: it has not succeeded
      // until one is found.
      ok = false;
      engine = EngineId::Validator;
    }

    /// Number of trace lines successfully matched (== lines.size() iff ok).
    size_t lines_matched = 0;
    uint64_t states_explored = 0;
    /// Mirror of stats.seconds (older callers).
    double seconds = 0.0;
    /// Candidate states alive at the deepest line reached (diagnostics).
    std::vector<S> frontier_at_failure;
    /// Description of the first line that could not be matched.
    std::string failed_line;
    /// For BFS: frontier size after each line (|T| growth).
    std::vector<size_t> frontier_sizes;
    /// The witness behavior found: one state per line plus the initial
    /// state (DFS: the search path; BFS: reconstructed via the store's
    /// predecessor links). Fault steps are folded into the line they
    /// precede.
    std::vector<S> witness;
    // Unified exploration-core statistics live in EngineReport::stats;
    // generated == states_explored, max_depth == lines_matched.
  };

  struct ValidationOptions : EngineOptions
  {
    SearchMode mode = SearchMode::Dfs;
    /// Maximum number of fault steps composed before each line.
    size_t max_faults_per_step = 0;
    uint64_t max_states = UINT64_MAX;
    // threads (inherited): BFS splits each line's frontier across the
    // fork-join pool; DFS at threads > 1 runs a work-stealing search over
    // independent subtrees with a shared dead-end memo (first witness
    // wins — same verdict, possibly a different witness among equals).
    // See docs/SPEC.md "threads semantics".
    /// BFS only: retain predecessor chains only for the live frontier
    /// (ROADMAP "store-backed BFS memory"). The sharded store is cleared
    /// after every line — it then holds one line's frontier instead of
    /// every line's — and witness reconstruction walks refcounted per-item
    /// parent chains, which free dead branches as the frontier moves on.
    /// Verdict, frontier sizes, work counts, and the witness are unchanged;
    /// memory on long chaotic traces is bounded by the live frontier.
    bool prune_bfs_store = false;
    /// Cap on the candidate states kept for the deepest-line diagnostics
    /// (the DFS "unsatisfied breakpoint" view).
    size_t max_diagnostic_states = 8;

    /// The exploration-core budget: work counter = emitted candidates.
    [[nodiscard]] Budget::Caps budget_caps() const
    {
      return make_caps(max_states, UINT64_MAX);
    }
  };

  template <SpecState S>
  class TraceValidator
  {
  public:
    TraceValidator(
      std::vector<S> init,
      std::vector<TraceLineExpander<S>> lines,
      ValidationOptions options = {}) :
      init_(std::move(init)),
      lines_(std::move(lines)),
      options_(options)
    {}

    /// Optional fault expander (e.g. "drop any one in-flight message"),
    /// composed 0..max_faults_per_step times before each line. The
    /// Expander deduplicates the fault closure by fingerprint.
    void set_fault_expander(std::function<void(const S&, const Emit<S>&)> f)
    {
      fault_ = std::move(f);
    }

    /// Campaign mode: additionally admit every *newly visited* candidate
    /// state into `store` (shared with other engines, never cleared),
    /// keyed by the plain state fingerprint — unsalted, so a state the
    /// checker or simulator already found is deduplicated, not re-counted.
    /// Admissions are tagged `origin`; depth records the trace line. The
    /// validator's own search store/memo are unaffected. The store must
    /// outlive the validator.
    void set_coverage_store(
      ShardedStateStore<S>* store, EngineId origin = EngineId::Validator)
    {
      coverage_store_ = store;
      expander_.set_origin(static_cast<uint8_t>(origin));
    }

    ValidationResult<S> run()
    {
      budget_ = Budget(options_.budget_caps());
      result_ = {};
      expander_.set_fault(fault_, options_.max_faults_per_step);
      if (options_.mode == SearchMode::Bfs)
      {
        run_bfs();
      }
      else if (resolve_worker_count(options_.threads) == 1)
      {
        run_dfs();
      }
      else
      {
        run_dfs_parallel();
      }
      result_.seconds = budget_.elapsed();
      result_.stats.seconds = result_.seconds;
      if (budget_.caps().time_budget_seconds < 1e17)
      {
        result_.stats.budget_seconds = budget_.caps().time_budget_seconds;
      }
      result_.stats.generated_states = result_.states_explored;
      result_.stats.max_depth = result_.lines_matched;
      result_.stats.complete =
        result_.ok || !budget_.exhausted(result_.states_explored);
      return result_;
    }

  private:
    using Store = ShardedStateStore<S>;
    using Id = typename Store::Id;

    /// Dedup/memoization key for a candidate state at a given trace
    /// position; the salt scopes each line's set separately.
    static uint64_t key(size_t line, uint64_t fp)
    {
      return hash_combine(static_cast<uint64_t>(line) + 1, fp);
    }

    /// Campaign coverage tap: admit a candidate the search just visited
    /// into the shared store (unsalted fingerprint — global dedup across
    /// lines and engines). Thread-safe; no-op outside campaign mode.
    void cover(const S& state, size_t line)
    {
      if (coverage_store_ != nullptr)
      {
        const auto ins = expander_.admit(
          *coverage_store_,
          state,
          Store::no_parent,
          Store::init_action,
          static_cast<uint32_t>(line));
        // Coverage admissions are pure membership: nothing ever walks
        // their (parentless) chains, so a fingerprint-only store can
        // retire the body immediately.
        if (ins.inserted && coverage_store_->fingerprint_only())
        {
          coverage_store_->drop_body(ins.id);
        }
      }
    }

    // ---- BFS: full-frontier search, parallel across each line ----

    /// Node of a refcounted predecessor chain, used when prune_bfs_store
    /// retires store records: each live frontier item keeps its own path
    /// back to an initial state, shared prefixes are shared, and a dead
    /// branch's suffix frees as soon as its last descendant leaves the
    /// frontier.
    struct PathNode
    {
      S state;
      std::shared_ptr<PathNode> parent;
    };

    /// Releases a parent chain iteratively, stopping at the first node
    /// someone else still references. A plain drop of the last reference
    /// to a deep chain would run ~depth nested destructors (each node
    /// holds the shared_ptr to its parent) and overflow the C stack on
    /// ~100k-line traces — the exact failure mode the iterative DFS was
    /// built to avoid.
    template <class Node>
    static void release_chain(std::shared_ptr<Node>&& node)
    {
      while (node != nullptr && node.use_count() == 1)
      {
        std::shared_ptr<Node> parent = std::move(node->parent);
        node.reset();
        node = std::move(parent);
      }
      node.reset();
    }

    /// A frontier entry carries a copy of the state so workers never read
    /// store records while siblings insert (the store's record() contract).
    struct Item
    {
      S state;
      Id id;
      /// Only populated under prune_bfs_store.
      std::shared_ptr<PathNode> chain;
    };

    struct Local
    {
      std::vector<Item> next;
      uint64_t duplicates = 0;
    };

    void run_bfs()
    {
      const WorkerPool pool(options_.threads);
      Store store(
        pool.size() == 1 ? 1 : 4 * static_cast<size_t>(pool.size()),
        options_.store);
      const auto snapshot_store = [&] {
        result_.stats.store_bytes = store.store_bytes();
        result_.stats.spilled_bytes = store.spilled_bytes();
        result_.stats.rehash_count = store.rehash_count();
      };
      const auto over_memory_budget = [&] {
        return options_.store.memory_budget_bytes > 0 &&
          store.store_bytes() > options_.store.memory_budget_bytes;
      };

      std::vector<Item> frontier;
      for (const S& init : init_)
      {
        const auto ins = expander_.admit_keyed(
          store,
          init,
          key(0, expander_.fingerprint_of(init)),
          Store::no_parent,
          Store::init_action,
          0);
        if (ins.inserted)
        {
          cover(init, 0);
          frontier.push_back(
            {init,
             ins.id,
             options_.prune_bfs_store ?
               std::make_shared<PathNode>(PathNode{init, nullptr}) :
               nullptr});
        }
      }

      // Under prune_bfs_store the store is cleared per line; this
      // accumulates the per-line counts so distinct_states still reports
      // the whole run.
      uint64_t pruned_distinct = 0;
      std::atomic<uint64_t> explored{0};

      for (size_t line = 0; line < lines_.size(); ++line)
      {
        std::atomic<size_t> cursor{0};
        std::atomic<bool> stop{false};
        std::vector<Local> locals(pool.size());

        pool.run([&](unsigned w) {
          expand_line_worker(
            store, frontier, line, cursor, stop, explored, locals[w]);
        });

        result_.states_explored = explored.load(std::memory_order_relaxed);
        std::vector<Item> next;
        for (Local& local : locals)
        {
          result_.stats.duplicate_states += local.duplicates;
          next.insert(
            next.end(),
            std::make_move_iterator(local.next.begin()),
            std::make_move_iterator(local.next.end()));
        }
        result_.frontier_sizes.push_back(next.size());

        if (
          next.empty() || budget_.exhausted(result_.states_explored) ||
          over_memory_budget())
        {
          result_.ok = false;
          result_.lines_matched = line;
          result_.frontier_at_failure.reserve(frontier.size());
          for (Item& item : frontier)
          {
            result_.frontier_at_failure.push_back(std::move(item.state));
          }
          result_.failed_line = lines_[line].description;
          result_.stats.distinct_states = pruned_distinct + store.size();
          snapshot_store();
          release_frontier_chains(frontier);
          release_frontier_chains(next);
          return;
        }
        if (options_.prune_bfs_store)
        {
          // The dead lines' records have served their dedup purpose;
          // retire them. Surviving paths live on in the items' chains.
          pruned_distinct += store.size();
          store.clear();
          release_frontier_chains(frontier);
        }
        else if (store.fingerprint_only())
        {
          // Line barrier (pool joined, store quiescent): the expanded
          // line's states leave the frontier; frozen arena blocks may
          // spill. The new frontier's bodies stay live — the witness
          // replay disambiguates against the final frontier.
          for (const Item& item : frontier)
          {
            store.drop_body(item.id);
          }
          store.maybe_spill();
        }
        frontier = std::move(next);
      }

      result_.ok = true;
      result_.lines_matched = lines_.size();
      if (!frontier.empty())
      {
        // The witness behavior: predecessor links from the first surviving
        // candidate back to its initial state (pool joined — record() is
        // safe again). Pruned runs walk the item's own chain instead of
        // the retired store records; both paths are first-inserter-wins,
        // so threads = 1 yields the identical witness either way.
        if (options_.prune_bfs_store)
        {
          std::vector<S> reversed;
          for (const PathNode* node = frontier.front().chain.get();
               node != nullptr;
               node = node->parent.get())
          {
            reversed.push_back(node->state);
          }
          result_.witness.assign(reversed.rbegin(), reversed.rend());
        }
        else
        {
          // Full mode reads the chain's bodies directly (bit-identical
          // to the historical walk); a fingerprint-only store replays
          // the recorded line chain from the initial states through the
          // same fault-composed expansion, disambiguated by the
          // surviving candidate itself (its body never left the
          // frontier).
          auto path = store.reconstruct_path(
            frontier.front().id,
            init_,
            [&](
              const S& s, uint32_t action, uint32_t, const Emit<S>& emit) {
              expander_.with_faults(s, [&](const S& pre) {
                lines_[action].expand(pre, emit);
              });
            },
            &frontier.front().state);
          if (path.has_value())
          {
            result_.witness = std::move(*path);
          }
        }
      }
      result_.stats.distinct_states = pruned_distinct + store.size();
      snapshot_store();
      release_frontier_chains(frontier);
    }

    /// Drops every item's chain without recursing down shared suffixes.
    void release_frontier_chains(std::vector<Item>& items)
    {
      for (Item& item : items)
      {
        release_chain(std::move(item.chain));
      }
    }

    void expand_line_worker(
      Store& store,
      const std::vector<Item>& frontier,
      size_t line,
      std::atomic<size_t>& cursor,
      std::atomic<bool>& stop,
      std::atomic<uint64_t>& explored,
      Local& local)
    {
      for (;;)
      {
        if (stop.load(std::memory_order_acquire))
        {
          return;
        }
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= frontier.size())
        {
          return;
        }
        const Item& item = frontier[i];
        expander_.with_faults(item.state, [&](const S& pre) {
          lines_[line].expand(pre, [&](const S& succ) {
            explored.fetch_add(1, std::memory_order_relaxed);
            const auto ins = expander_.admit_keyed(
              store,
              succ,
              key(line + 1, expander_.fingerprint_of(succ)),
              item.id,
              static_cast<uint32_t>(line),
              static_cast<uint32_t>(line + 1));
            if (ins.inserted)
            {
              cover(succ, line + 1);
              local.next.push_back(
                {succ,
                 ins.id,
                 options_.prune_bfs_store ?
                   std::make_shared<PathNode>(PathNode{succ, item.chain}) :
                   nullptr});
            }
            else
            {
              local.duplicates++;
            }
          });
        });
        if (budget_.exhausted(explored.load(std::memory_order_relaxed)))
        {
          stop.store(true, std::memory_order_release);
          return;
        }
      }
    }

    // ---- DFS: single-witness search on an explicit frame stack ----

    struct Frame
    {
      size_t line = 0;
      uint64_t fp = 0;
      std::vector<S> successors;
      size_t next = 0;
    };

    enum class Enter
    {
      Matched, // line == lines.size(): the whole trace is matched
      Fail, // budget, or memoized dead end
      Entered, // frame pushed; successors expanded
    };

    void run_dfs()
    {
      // Memoize (line, state-fingerprint) pairs known to fail — the
      // "unsatisfied" states (§6.3). deepest_* provide the diagnostics.
      dead_.clear();
      deepest_line_ = 0;
      deepest_frontier_.clear();

      for (const S& init : init_)
      {
        std::vector<S> path;
        if (dfs_from(init, path))
        {
          result_.ok = true;
          result_.lines_matched = lines_.size();
          result_.witness = std::move(path);
          return;
        }
        if (budget_.exhausted(result_.states_explored))
        {
          break;
        }
      }
      result_.ok = false;
      result_.lines_matched = deepest_line_;
      result_.frontier_at_failure = std::move(deepest_frontier_);
      if (deepest_line_ < lines_.size())
      {
        result_.failed_line = lines_[deepest_line_].description;
      }
    }

    /// Iterative depth-first search from one initial state. path mirrors
    /// the frame stack (path[i] is the state entered at line i), so on a
    /// match it is exactly the witness behavior.
    bool dfs_from(const S& init, std::vector<S>& path)
    {
      path = {init};
      std::vector<Frame> stack;
      {
        Frame root;
        switch (enter(init, 0, root))
        {
          case Enter::Matched:
            return true;
          case Enter::Fail:
            return false;
          case Enter::Entered:
            stack.push_back(std::move(root));
            break;
        }
      }
      while (!stack.empty())
      {
        Frame& top = stack.back();
        if (top.next == top.successors.size())
        {
          // Post-order: every successor failed. Memoize the dead end and
          // backtrack.
          dead_.insert(key(top.line, top.fp));
          stack.pop_back();
          path.pop_back();
          continue;
        }
        const S& succ = top.successors[top.next++];
        path.push_back(succ);
        Frame child;
        switch (enter(succ, top.line + 1, child))
        {
          case Enter::Matched:
            return true;
          case Enter::Fail:
            path.pop_back();
            break;
          case Enter::Entered:
            // Invalidates `top` and `succ`; neither is used again.
            stack.push_back(std::move(child));
            break;
        }
      }
      return false;
    }

    /// The per-node prologue of the search: match/budget/dead checks,
    /// deepest-line diagnostics, successor expansion.
    Enter enter(const S& state, size_t line, Frame& out)
    {
      if (line == lines_.size())
      {
        // Matched end states count as visited coverage (BFS admits its
        // whole final frontier; keep the DFS tap consistent).
        cover(state, line);
        return Enter::Matched;
      }
      if (budget_.exhausted(result_.states_explored))
      {
        return Enter::Fail;
      }
      const uint64_t fp = expander_.fingerprint_of(state);
      if (dead_.contains(key(line, fp)))
      {
        result_.stats.duplicate_states++;
        result_.stats.memo_hits++;
        return Enter::Fail;
      }
      if (line > deepest_line_)
      {
        deepest_line_ = line;
        deepest_frontier_.clear();
      }
      if (
        line == deepest_line_ &&
        deepest_frontier_.size() < options_.max_diagnostic_states)
      {
        deepest_frontier_.push_back(state);
      }
      result_.stats.distinct_states++;
      cover(state, line);
      out.line = line;
      out.fp = fp;
      expander_.with_faults(state, [&](const S& pre) {
        lines_[line].expand(pre, [&](const S& succ) {
          result_.states_explored++;
          out.successors.push_back(succ);
        });
      });
      return Enter::Entered;
    }

    // ---- DFS, threads > 1: work-stealing search over independent
    // subtrees. Each worker's deque bottom is its DFS stack; idle workers
    // steal the shallowest (largest) subtree from a victim's top. The
    // dead-end memo is the shared StripedKeySet, so a subtree proven dead
    // by one worker prunes every other worker's search, and the first
    // witness wins through the Budget cooperative-stop flag. ----

    /// A node of the parallel search tree: the state reached after
    /// matching `line` lines, linked to the path that got there. Tasks
    /// are the unit of stealing; the parent chain doubles as the witness
    /// path and as the completion tree for dead-end detection.
    struct Task
    {
      S state;
      size_t line = 0;
      std::shared_ptr<Task> parent;
      /// Set by the expanding worker before any child is published; the
      /// deque mutex orders it for whichever worker later resolves the
      /// subtree.
      uint64_t fp = 0;
      /// Children whose subtrees are still unresolved. The worker that
      /// fails the last one proves this node dead, memoizes it, and
      /// propagates upward — the parallel analogue of the sequential
      /// post-order memoization.
      std::atomic<size_t> pending{0};
    };
    using TaskPtr = std::shared_ptr<Task>;

    struct DfsShared
    {
      WorkStealingDeques<TaskPtr> deques;
      StripedKeySet dead;
      std::atomic<uint64_t> explored{0};
      /// Root subtrees (one per initial state) not yet failed; at zero
      /// the whole search space is exhausted.
      std::atomic<size_t> roots_pending;
      std::atomic<bool> done;
      /// First-witness-wins cooperative stop (wired into the Budget).
      std::atomic<bool> stop{false};
      std::atomic<bool> witness_claimed{false};

      DfsShared(unsigned workers, size_t stripes, size_t roots) :
        deques(workers),
        dead(stripes),
        roots_pending(roots),
        done(roots == 0)
      {}
    };

    /// Per-worker slice, merged after the pool joins.
    struct DfsLocal
    {
      size_t deepest_line = 0;
      std::vector<S> deepest_frontier;
      uint64_t distinct = 0;
      uint64_t memo_hits = 0;
      uint64_t steals = 0;
      /// Only the worker that claimed the witness fills this.
      std::vector<S> witness;
    };

    void run_dfs_parallel()
    {
      const WorkerPool pool(options_.threads);
      DfsShared shared(
        pool.size(), 4 * static_cast<size_t>(pool.size()), init_.size());
      budget_.set_stop_flag(&shared.stop);

      for (size_t i = 0; i < init_.size(); ++i)
      {
        auto root = std::make_shared<Task>();
        root->state = init_[i];
        shared.deques.push(
          static_cast<unsigned>(i % pool.size()), std::move(root));
      }

      std::vector<DfsLocal> locals(pool.size());
      pool.run([&](unsigned w) { dfs_worker(shared, w, locals[w]); });
      // The stop flag dies with this frame; detach it before run() makes
      // its final exhausted() check.
      budget_.set_stop_flag(nullptr);

      // Drain tasks abandoned by the early stop (witness or budget) so
      // their parent chains are torn down iteratively.
      TaskPtr leftover;
      bool stole = false;
      for (unsigned w = 0; w < pool.size(); ++w)
      {
        while (shared.deques.pop_or_steal(w, leftover, stole))
        {
          release_chain(std::move(leftover));
        }
      }

      result_.states_explored =
        shared.explored.load(std::memory_order_relaxed);
      for (DfsLocal& local : locals)
      {
        result_.stats.distinct_states += local.distinct;
        result_.stats.duplicate_states += local.memo_hits;
        result_.stats.memo_hits += local.memo_hits;
        result_.stats.steals += local.steals;
        if (!local.witness.empty())
        {
          result_.ok = true;
          result_.witness = std::move(local.witness);
        }
      }
      if (result_.ok)
      {
        result_.lines_matched = lines_.size();
        return;
      }

      // Merge the per-worker unsatisfied-breakpoint diagnostics: deepest
      // line over all workers, candidates concatenated in worker order up
      // to the configured cap.
      size_t deepest = 0;
      for (const DfsLocal& local : locals)
      {
        deepest = std::max(deepest, local.deepest_line);
      }
      for (DfsLocal& local : locals)
      {
        if (local.deepest_line != deepest)
        {
          continue;
        }
        for (S& s : local.deepest_frontier)
        {
          if (
            result_.frontier_at_failure.size() <
            options_.max_diagnostic_states)
          {
            result_.frontier_at_failure.push_back(std::move(s));
          }
        }
      }
      result_.lines_matched = deepest;
      if (deepest < lines_.size())
      {
        result_.failed_line = lines_[deepest].description;
      }
    }

    void dfs_worker(DfsShared& shared, unsigned w, DfsLocal& local)
    {
      for (;;)
      {
        if (
          shared.stop.load(std::memory_order_acquire) ||
          shared.done.load(std::memory_order_acquire))
        {
          return;
        }
        if (budget_.exhausted(
              shared.explored.load(std::memory_order_relaxed)))
        {
          return;
        }
        TaskPtr task;
        bool stole = false;
        if (!shared.deques.pop_or_steal(w, task, stole))
        {
          // Empty everywhere but the search is not done: siblings are
          // still expanding. Yield until work appears or the run ends.
          std::this_thread::yield();
          continue;
        }
        if (stole)
        {
          local.steals++;
        }
        dfs_process(shared, w, std::move(task), local);
      }
    }

    /// The parallel counterpart of enter(): match/budget/memo checks,
    /// diagnostics, expansion — publishing children instead of pushing a
    /// frame.
    void dfs_process(DfsShared& shared, unsigned w, TaskPtr task, DfsLocal& local)
    {
      if (task->line == lines_.size())
      {
        cover(task->state, task->line);
        if (!shared.witness_claimed.exchange(
              true, std::memory_order_acq_rel))
        {
          for (const Task* t = task.get(); t != nullptr;
               t = t->parent.get())
          {
            local.witness.push_back(t->state);
          }
          std::reverse(local.witness.begin(), local.witness.end());
          shared.stop.store(true, std::memory_order_release);
        }
        release_chain(std::move(task));
        return;
      }
      if (budget_.exhausted(shared.explored.load(std::memory_order_relaxed)))
      {
        // Not a proven dead end — but once the budget is exhausted every
        // path fails the same way, exactly like the sequential wind-down.
        subtree_failed(shared, std::move(task), false);
        return;
      }
      const uint64_t fp = expander_.fingerprint_of(task->state);
      if (shared.dead.contains(key(task->line, fp)))
      {
        local.memo_hits++;
        subtree_failed(shared, std::move(task), false);
        return;
      }
      if (task->line > local.deepest_line)
      {
        local.deepest_line = task->line;
        local.deepest_frontier.clear();
      }
      if (
        task->line == local.deepest_line &&
        local.deepest_frontier.size() < options_.max_diagnostic_states)
      {
        local.deepest_frontier.push_back(task->state);
      }
      local.distinct++;
      cover(task->state, task->line);
      task->fp = fp;
      std::vector<S> successors;
      expander_.with_faults(task->state, [&](const S& pre) {
        lines_[task->line].expand(pre, [&](const S& succ) {
          successors.push_back(succ);
        });
      });
      shared.explored.fetch_add(
        successors.size(), std::memory_order_relaxed);
      if (successors.empty())
      {
        subtree_failed(shared, std::move(task), true);
        return;
      }
      // pending must cover every child before the first one is published —
      // a thief may fail a stolen child while we are still pushing.
      task->pending.store(successors.size(), std::memory_order_relaxed);
      // Push in reverse: pop_bottom is LIFO, so the owner descends into
      // the first successor next (the sequential sibling order) while
      // thieves take later siblings from the top.
      for (size_t i = successors.size(); i-- > 0;)
      {
        auto child = std::make_shared<Task>();
        child->state = std::move(successors[i]);
        child->line = task->line + 1;
        child->parent = task;
        shared.deques.push(w, std::move(child));
      }
      release_chain(std::move(task));
    }

    /// Resolves a subtree that was exhausted without finding a witness.
    /// `dead` is true when the exhaustion proves (line, fp) unsatisfiable
    /// (no successors, or every child subtree failed) — those keys go into
    /// the shared memo; budget cuts and memo hits do not re-memoize.
    /// Walks up the completion tree: failing the last outstanding child of
    /// a node proves that node dead in turn.
    void subtree_failed(DfsShared& shared, TaskPtr task, bool dead)
    {
      for (;;)
      {
        if (dead)
        {
          shared.dead.insert(key(task->line, task->fp));
        }
        TaskPtr parent = task->parent;
        release_chain(std::move(task));
        if (parent == nullptr)
        {
          if (
            shared.roots_pending.fetch_sub(1, std::memory_order_acq_rel) ==
            1)
          {
            shared.done.store(true, std::memory_order_release);
          }
          return;
        }
        if (parent->pending.fetch_sub(1, std::memory_order_acq_rel) != 1)
        {
          release_chain(std::move(parent));
          return;
        }
        task = std::move(parent);
        dead = true;
      }
    }

    std::vector<S> init_;
    std::vector<TraceLineExpander<S>> lines_;
    ValidationOptions options_;
    std::function<void(const S&, const Emit<S>&)> fault_;

    Budget budget_;
    Expander<S> expander_;
    Store* coverage_store_ = nullptr;
    ValidationResult<S> result_;
    std::unordered_set<uint64_t> dead_;
    size_t deepest_line_ = 0;
    std::vector<S> deepest_frontier_;
  };
}
