// Generic trace validation engine (§6).
//
// Checks T ∩ S ≠ ∅: given a sequence of per-trace-line expanders (each
// enumerating the spec transitions consistent with that line), search for
// at least one spec behavior that matches the whole trace. Faults that are
// not recorded in the trace (message drops) are handled by composing an
// optional fault expander before each step, mirroring the paper's
// IsFault · Next composition (Listing 5).
//
// Two search modes, reproducing §6.4:
//  * BFS computes the full frontier of candidate spec states line by line —
//    complete but can explode with nondeterminism;
//  * DFS looks for a single witness behavior with memoized dead ends —
//    "orders of magnitude faster", which is what made trace validation
//    usable in CI.
//
// On failure there is no counterexample (§6.3) — instead the result carries
// the paper's diagnostics: the deepest line matched, the candidate states
// at that line (the "unsatisfied breakpoint" view), and per-line frontier
// sizes.
#pragma once

#include <chrono>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "spec/spec.h"

namespace scv::spec
{
  /// Expander for one trace line: from a candidate spec state, emit every
  /// spec successor consistent with the line.
  template <SpecState S>
  struct TraceLineExpander
  {
    std::string description; // e.g. "sndAE node=1 peer=2"
    std::function<void(const S&, const Emit<S>&)> expand;
  };

  enum class SearchMode
  {
    Bfs,
    Dfs,
  };

  template <SpecState S>
  struct ValidationResult
  {
    bool ok = false;
    /// Number of trace lines successfully matched (== lines.size() iff ok).
    size_t lines_matched = 0;
    uint64_t states_explored = 0;
    double seconds = 0.0;
    /// Candidate states alive at the deepest line reached (diagnostics).
    std::vector<S> frontier_at_failure;
    /// Description of the first line that could not be matched.
    std::string failed_line;
    /// For BFS: frontier size after each line (|T| growth).
    std::vector<size_t> frontier_sizes;
    /// The witness behavior found (DFS mode, or reconstructed in BFS).
    std::vector<S> witness;
  };

  struct ValidationOptions
  {
    SearchMode mode = SearchMode::Dfs;
    /// Maximum number of fault steps composed before each line.
    size_t max_faults_per_step = 0;
    double time_budget_seconds = 1e18;
    uint64_t max_states = UINT64_MAX;
  };

  template <SpecState S>
  class TraceValidator
  {
  public:
    TraceValidator(
      std::vector<S> init,
      std::vector<TraceLineExpander<S>> lines,
      ValidationOptions options = {}) :
      init_(std::move(init)),
      lines_(std::move(lines)),
      options_(options)
    {}

    /// Optional fault expander (e.g. "drop any one in-flight message"),
    /// composed 0..max_faults_per_step times before each line.
    void set_fault_expander(std::function<void(const S&, const Emit<S>&)> f)
    {
      fault_ = std::move(f);
    }

    ValidationResult<S> run()
    {
      started_ = std::chrono::steady_clock::now();
      result_ = {};
      if (options_.mode == SearchMode::Bfs)
      {
        run_bfs();
      }
      else
      {
        run_dfs();
      }
      result_.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - started_)
                          .count();
      return result_;
    }

  private:
    [[nodiscard]] bool out_of_budget() const
    {
      return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - started_)
               .count() > options_.time_budget_seconds ||
        result_.states_explored > options_.max_states;
    }

    /// Emits `state` and every state reachable from it by up to
    /// max_faults_per_step applications of the fault expander.
    void with_faults(const S& state, const Emit<S>& emit)
    {
      emit(state);
      if (!fault_ || options_.max_faults_per_step == 0)
      {
        return;
      }
      std::vector<S> layer = {state};
      for (size_t k = 0; k < options_.max_faults_per_step; ++k)
      {
        std::vector<S> next_layer;
        for (const S& s : layer)
        {
          fault_(s, [&](const S& f) {
            next_layer.push_back(f);
            emit(f);
          });
        }
        if (next_layer.empty())
        {
          break;
        }
        layer = std::move(next_layer);
      }
    }

    void run_bfs()
    {
      // Frontier of all candidate states, deduplicated by fingerprint.
      std::vector<S> frontier = init_;
      for (size_t line = 0; line < lines_.size(); ++line)
      {
        std::vector<S> next;
        std::unordered_set<uint64_t> seen;
        for (const S& s : frontier)
        {
          with_faults(s, [&](const S& pre) {
            lines_[line].expand(pre, [&](const S& succ) {
              result_.states_explored++;
              const uint64_t fp = fingerprint(succ);
              if (seen.insert(fp).second)
              {
                next.push_back(succ);
              }
            });
          });
          if (out_of_budget())
          {
            break;
          }
        }
        result_.frontier_sizes.push_back(next.size());
        if (next.empty() || out_of_budget())
        {
          result_.ok = false;
          result_.lines_matched = line;
          result_.frontier_at_failure = std::move(frontier);
          result_.failed_line = lines_[line].description;
          return;
        }
        frontier = std::move(next);
      }
      result_.ok = true;
      result_.lines_matched = lines_.size();
      if (!frontier.empty())
      {
        result_.witness.push_back(frontier.front());
      }
    }

    void run_dfs()
    {
      // Memoize (line, state-fingerprint) pairs known to fail — the
      // "unsatisfied" states (§6.3). deepest_* provide the diagnostics.
      dead_.clear();
      deepest_line_ = 0;
      deepest_frontier_.clear();

      for (const S& init : init_)
      {
        std::vector<S> path = {init};
        if (dfs_step(init, 0, path))
        {
          result_.ok = true;
          result_.lines_matched = lines_.size();
          result_.witness = std::move(path);
          return;
        }
        if (out_of_budget())
        {
          break;
        }
      }
      result_.ok = false;
      result_.lines_matched = deepest_line_;
      result_.frontier_at_failure = std::move(deepest_frontier_);
      if (deepest_line_ < lines_.size())
      {
        result_.failed_line = lines_[deepest_line_].description;
      }
    }

    bool dfs_step(const S& state, size_t line, std::vector<S>& path)
    {
      if (line == lines_.size())
      {
        return true;
      }
      if (out_of_budget())
      {
        return false;
      }
      const uint64_t fp = fingerprint(state);
      if (dead_.contains(key(line, fp)))
      {
        return false;
      }
      if (line > deepest_line_)
      {
        deepest_line_ = line;
        deepest_frontier_.clear();
      }
      if (line == deepest_line_ && deepest_frontier_.size() < 8)
      {
        deepest_frontier_.push_back(state);
      }

      std::vector<S> successors;
      with_faults(state, [&](const S& pre) {
        lines_[line].expand(pre, [&](const S& succ) {
          result_.states_explored++;
          successors.push_back(succ);
        });
      });
      for (const S& succ : successors)
      {
        path.push_back(succ);
        if (dfs_step(succ, line + 1, path))
        {
          return true;
        }
        path.pop_back();
      }
      dead_.insert(key(line, fp));
      return false;
    }

    static uint64_t key(size_t line, uint64_t fp)
    {
      return hash_combine(static_cast<uint64_t>(line) + 1, fp);
    }

    std::vector<S> init_;
    std::vector<TraceLineExpander<S>> lines_;
    ValidationOptions options_;
    std::function<void(const S&, const Emit<S>&)> fault_;

    std::chrono::steady_clock::time_point started_;
    ValidationResult<S> result_;
    std::unordered_set<uint64_t> dead_;
    size_t deepest_line_ = 0;
    std::vector<S> deepest_frontier_;
  };
}
