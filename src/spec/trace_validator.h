// Generic trace validation engine (§6), built on the exploration core.
//
// Checks T ∩ S ≠ ∅: given a sequence of per-trace-line expanders (each
// enumerating the spec transitions consistent with that line), search for
// at least one spec behavior that matches the whole trace. Faults that are
// not recorded in the trace (message drops) are handled by the Expander's
// fault composition before each step, mirroring the paper's
// IsFault · Next composition (Listing 5).
//
// Two search modes, reproducing §6.4:
//  * BFS computes the full frontier of candidate spec states line by line —
//    complete but can explode with nondeterminism. The frontier lives in a
//    ShardedStateStore (dedup scoped per line by salting the fingerprint
//    with the line number) whose predecessor links reconstruct a full
//    witness behavior on success; expansion of each line is split across a
//    WorkerPool (ValidationOptions::threads, same semantics as
//    CheckLimits::threads — threads=1 is the bit-identical sequential
//    reference).
//  * DFS looks for a single witness behavior with memoized dead ends —
//    "orders of magnitude faster", which is what made trace validation
//    usable in CI. The search runs an explicit frame stack (no recursion),
//    so production traces of any length cannot overflow the C stack.
//
// On failure there is no counterexample (§6.3) — instead the result carries
// the paper's diagnostics: the deepest line matched, the candidate states
// at that line (the "unsatisfied breakpoint" view, capped by
// max_diagnostic_states in DFS), and per-line frontier sizes.
//
// All limits route through Budget (budget_caps()); there is no private
// deadline arithmetic in this engine.
#pragma once

#include <atomic>
#include <unordered_set>
#include <vector>

#include "spec/budget.h"
#include "spec/expander.h"
#include "spec/sharded_state_store.h"
#include "spec/spec.h"
#include "spec/stats.h"
#include "spec/worker_pool.h"

namespace scv::spec
{
  /// Expander for one trace line: from a candidate spec state, emit every
  /// spec successor consistent with the line.
  template <SpecState S>
  struct TraceLineExpander
  {
    std::string description; // e.g. "sndAE node=1 peer=2"
    std::function<void(const S&, const Emit<S>&)> expand;
  };

  enum class SearchMode
  {
    Bfs,
    Dfs,
  };

  template <SpecState S>
  struct ValidationResult
  {
    bool ok = false;
    /// Number of trace lines successfully matched (== lines.size() iff ok).
    size_t lines_matched = 0;
    uint64_t states_explored = 0;
    double seconds = 0.0;
    /// Candidate states alive at the deepest line reached (diagnostics).
    std::vector<S> frontier_at_failure;
    /// Description of the first line that could not be matched.
    std::string failed_line;
    /// For BFS: frontier size after each line (|T| growth).
    std::vector<size_t> frontier_sizes;
    /// The witness behavior found: one state per line plus the initial
    /// state (DFS: the search path; BFS: reconstructed via the store's
    /// predecessor links). Fault steps are folded into the line they
    /// precede.
    std::vector<S> witness;
    /// Unified exploration-core statistics (states/s, dedup counters);
    /// generated == states_explored, max_depth == lines_matched.
    ExplorationStats stats;
  };

  struct ValidationOptions
  {
    SearchMode mode = SearchMode::Dfs;
    /// Maximum number of fault steps composed before each line.
    size_t max_faults_per_step = 0;
    double time_budget_seconds = 1e18;
    uint64_t max_states = UINT64_MAX;
    /// Worker threads for BFS frontier expansion; same semantics as
    /// CheckLimits::threads (1 = sequential reference engine, bit-identical
    /// results; 0 = one worker per hardware thread). DFS chases a single
    /// witness and always runs sequentially.
    unsigned threads = 1;
    /// Cap on the candidate states kept for the deepest-line diagnostics
    /// (the DFS "unsatisfied breakpoint" view).
    size_t max_diagnostic_states = 8;

    /// The exploration-core budget: work counter = emitted candidates.
    [[nodiscard]] Budget::Caps budget_caps() const
    {
      return {time_budget_seconds, max_states, UINT64_MAX};
    }
  };

  template <SpecState S>
  class TraceValidator
  {
  public:
    TraceValidator(
      std::vector<S> init,
      std::vector<TraceLineExpander<S>> lines,
      ValidationOptions options = {}) :
      init_(std::move(init)),
      lines_(std::move(lines)),
      options_(options)
    {}

    /// Optional fault expander (e.g. "drop any one in-flight message"),
    /// composed 0..max_faults_per_step times before each line. The
    /// Expander deduplicates the fault closure by fingerprint.
    void set_fault_expander(std::function<void(const S&, const Emit<S>&)> f)
    {
      fault_ = std::move(f);
    }

    ValidationResult<S> run()
    {
      budget_ = Budget(options_.budget_caps());
      result_ = {};
      expander_.set_fault(fault_, options_.max_faults_per_step);
      if (options_.mode == SearchMode::Bfs)
      {
        run_bfs();
      }
      else
      {
        run_dfs();
      }
      result_.seconds = budget_.elapsed();
      result_.stats.seconds = result_.seconds;
      result_.stats.generated_states = result_.states_explored;
      result_.stats.max_depth = result_.lines_matched;
      result_.stats.complete =
        result_.ok || !budget_.exhausted(result_.states_explored);
      return result_;
    }

  private:
    using Store = ShardedStateStore<S>;
    using Id = typename Store::Id;

    /// Dedup/memoization key for a candidate state at a given trace
    /// position; the salt scopes each line's set separately.
    static uint64_t key(size_t line, uint64_t fp)
    {
      return hash_combine(static_cast<uint64_t>(line) + 1, fp);
    }

    // ---- BFS: full-frontier search, parallel across each line ----

    /// A frontier entry carries a copy of the state so workers never read
    /// store records while siblings insert (the store's record() contract).
    struct Item
    {
      S state;
      Id id;
    };

    struct Local
    {
      std::vector<Item> next;
      uint64_t duplicates = 0;
    };

    void run_bfs()
    {
      const WorkerPool pool(options_.threads);
      Store store(
        pool.size() == 1 ? 1 : 4 * static_cast<size_t>(pool.size()));

      std::vector<Item> frontier;
      for (const S& init : init_)
      {
        const auto ins = expander_.admit_keyed(
          store,
          init,
          key(0, expander_.fingerprint_of(init)),
          Store::no_parent,
          Store::init_action,
          0);
        if (ins.inserted)
        {
          frontier.push_back({init, ins.id});
        }
      }

      std::atomic<uint64_t> explored{0};

      for (size_t line = 0; line < lines_.size(); ++line)
      {
        std::atomic<size_t> cursor{0};
        std::atomic<bool> stop{false};
        std::vector<Local> locals(pool.size());

        pool.run([&](unsigned w) {
          expand_line_worker(
            store, frontier, line, cursor, stop, explored, locals[w]);
        });

        result_.states_explored = explored.load(std::memory_order_relaxed);
        std::vector<Item> next;
        for (Local& local : locals)
        {
          result_.stats.duplicate_states += local.duplicates;
          next.insert(
            next.end(),
            std::make_move_iterator(local.next.begin()),
            std::make_move_iterator(local.next.end()));
        }
        result_.frontier_sizes.push_back(next.size());

        if (next.empty() || budget_.exhausted(result_.states_explored))
        {
          result_.ok = false;
          result_.lines_matched = line;
          result_.frontier_at_failure.reserve(frontier.size());
          for (Item& item : frontier)
          {
            result_.frontier_at_failure.push_back(std::move(item.state));
          }
          result_.failed_line = lines_[line].description;
          result_.stats.distinct_states = store.size();
          return;
        }
        frontier = std::move(next);
      }

      result_.ok = true;
      result_.lines_matched = lines_.size();
      if (!frontier.empty())
      {
        // The witness behavior: predecessor links from the first surviving
        // candidate back to its initial state (pool joined — record() is
        // safe again).
        std::vector<S> reversed;
        for (Id id = frontier.front().id; id != Store::no_parent;
             id = store.record(id).parent)
        {
          reversed.push_back(store.record(id).state);
        }
        result_.witness.assign(reversed.rbegin(), reversed.rend());
      }
      result_.stats.distinct_states = store.size();
    }

    void expand_line_worker(
      Store& store,
      const std::vector<Item>& frontier,
      size_t line,
      std::atomic<size_t>& cursor,
      std::atomic<bool>& stop,
      std::atomic<uint64_t>& explored,
      Local& local)
    {
      for (;;)
      {
        if (stop.load(std::memory_order_acquire))
        {
          return;
        }
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= frontier.size())
        {
          return;
        }
        const Item& item = frontier[i];
        expander_.with_faults(item.state, [&](const S& pre) {
          lines_[line].expand(pre, [&](const S& succ) {
            explored.fetch_add(1, std::memory_order_relaxed);
            const auto ins = expander_.admit_keyed(
              store,
              succ,
              key(line + 1, expander_.fingerprint_of(succ)),
              item.id,
              static_cast<uint32_t>(line),
              static_cast<uint32_t>(line + 1));
            if (ins.inserted)
            {
              local.next.push_back({succ, ins.id});
            }
            else
            {
              local.duplicates++;
            }
          });
        });
        if (budget_.exhausted(explored.load(std::memory_order_relaxed)))
        {
          stop.store(true, std::memory_order_release);
          return;
        }
      }
    }

    // ---- DFS: single-witness search on an explicit frame stack ----

    struct Frame
    {
      size_t line = 0;
      uint64_t fp = 0;
      std::vector<S> successors;
      size_t next = 0;
    };

    enum class Enter
    {
      Matched, // line == lines.size(): the whole trace is matched
      Fail, // budget, or memoized dead end
      Entered, // frame pushed; successors expanded
    };

    void run_dfs()
    {
      // Memoize (line, state-fingerprint) pairs known to fail — the
      // "unsatisfied" states (§6.3). deepest_* provide the diagnostics.
      dead_.clear();
      deepest_line_ = 0;
      deepest_frontier_.clear();

      for (const S& init : init_)
      {
        std::vector<S> path;
        if (dfs_from(init, path))
        {
          result_.ok = true;
          result_.lines_matched = lines_.size();
          result_.witness = std::move(path);
          return;
        }
        if (budget_.exhausted(result_.states_explored))
        {
          break;
        }
      }
      result_.ok = false;
      result_.lines_matched = deepest_line_;
      result_.frontier_at_failure = std::move(deepest_frontier_);
      if (deepest_line_ < lines_.size())
      {
        result_.failed_line = lines_[deepest_line_].description;
      }
    }

    /// Iterative depth-first search from one initial state. path mirrors
    /// the frame stack (path[i] is the state entered at line i), so on a
    /// match it is exactly the witness behavior.
    bool dfs_from(const S& init, std::vector<S>& path)
    {
      path = {init};
      std::vector<Frame> stack;
      {
        Frame root;
        switch (enter(init, 0, root))
        {
          case Enter::Matched:
            return true;
          case Enter::Fail:
            return false;
          case Enter::Entered:
            stack.push_back(std::move(root));
            break;
        }
      }
      while (!stack.empty())
      {
        Frame& top = stack.back();
        if (top.next == top.successors.size())
        {
          // Post-order: every successor failed. Memoize the dead end and
          // backtrack.
          dead_.insert(key(top.line, top.fp));
          stack.pop_back();
          path.pop_back();
          continue;
        }
        const S& succ = top.successors[top.next++];
        path.push_back(succ);
        Frame child;
        switch (enter(succ, top.line + 1, child))
        {
          case Enter::Matched:
            return true;
          case Enter::Fail:
            path.pop_back();
            break;
          case Enter::Entered:
            // Invalidates `top` and `succ`; neither is used again.
            stack.push_back(std::move(child));
            break;
        }
      }
      return false;
    }

    /// The per-node prologue of the search: match/budget/dead checks,
    /// deepest-line diagnostics, successor expansion.
    Enter enter(const S& state, size_t line, Frame& out)
    {
      if (line == lines_.size())
      {
        return Enter::Matched;
      }
      if (budget_.exhausted(result_.states_explored))
      {
        return Enter::Fail;
      }
      const uint64_t fp = expander_.fingerprint_of(state);
      if (dead_.contains(key(line, fp)))
      {
        result_.stats.duplicate_states++;
        return Enter::Fail;
      }
      if (line > deepest_line_)
      {
        deepest_line_ = line;
        deepest_frontier_.clear();
      }
      if (
        line == deepest_line_ &&
        deepest_frontier_.size() < options_.max_diagnostic_states)
      {
        deepest_frontier_.push_back(state);
      }
      result_.stats.distinct_states++;
      out.line = line;
      out.fp = fp;
      expander_.with_faults(state, [&](const S& pre) {
        lines_[line].expand(pre, [&](const S& succ) {
          result_.states_explored++;
          out.successors.push_back(succ);
        });
      });
      return Enter::Entered;
    }

    std::vector<S> init_;
    std::vector<TraceLineExpander<S>> lines_;
    ValidationOptions options_;
    std::function<void(const S&, const Emit<S>&)> fault_;

    Budget budget_;
    Expander<S> expander_;
    ValidationResult<S> result_;
    std::unordered_set<uint64_t> dead_;
    size_t deepest_line_ = 0;
    std::vector<S> deepest_frontier_;
  };
}
