#include "spec/campaign.h"

#include <iomanip>
#include <sstream>

#include "util/json.h"

namespace scv::spec
{
  std::string CampaignReport::summary() const
  {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    os << "phase       ran ok  allotted  used      new-states  distinct  "
          "seeded\n";
    for (const PhaseReport& p : phases)
    {
      os << std::left << std::setw(12) << engine_name(p.engine)
         << std::setw(4) << (p.ran ? "yes" : "no") << std::setw(4)
         << (!p.ran ? "-" : p.ok ? "yes" : "NO") << std::right << std::setw(7)
         << p.allotted_seconds << "s " << std::setw(8) << p.stats.seconds
         << "s " << std::setw(11) << p.store_new << " " << std::setw(9)
         << p.stats.distinct_states << " " << std::setw(7)
         << p.stats.seeded_states << "\n";
    }
    os << "union: " << union_distinct << " distinct states in "
       << total_seconds << "s of a " << box_seconds << "s box\n";
    return os.str();
  }

  json::Value CampaignReport::to_json_value() const
  {
    json::Array phase_rows;
    for (const PhaseReport& p : phases)
    {
      phase_rows.push_back(json::object(
        {{"engine", engine_name(p.engine)},
         {"ran", p.ran},
         {"ok", p.ok},
         {"allotted_seconds", p.allotted_seconds},
         {"seconds", p.stats.seconds},
         {"budget_seconds", p.stats.budget_seconds},
         {"store_new", p.store_new},
         {"distinct_states", p.stats.distinct_states},
         {"generated_states", p.stats.generated_states},
         {"seeded_states", p.stats.seeded_states},
         {"canonicalized_states", p.stats.canonicalized_states},
         {"symmetry_hits", p.stats.symmetry_hits},
         {"complete", p.stats.complete}}));
    }
    return json::object(
      {{"phases", std::move(phase_rows)},
       {"union_distinct", union_distinct},
       {"total_seconds", total_seconds},
       {"box_seconds", box_seconds}});
  }

  std::string CampaignReport::to_json() const
  {
    return to_json_value().dump();
  }
}
