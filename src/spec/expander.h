// Successor expansion layer shared by the exploration engines.
//
// Between "the spec's actions" and "the engine's search loop" sits a thin
// layer every engine was reimplementing: checking the state constraint
// before expanding, fingerprinting states for dedup, and composing the
// optional fault expander (the paper's IsFault · Next, Listing 5) before a
// trace line. Expander<S> owns all three.
//
// Fault composition is fingerprint-deduplicated per source state: each
// distinct state in the closure of up to max_fault_layers fault
// applications is emitted exactly once. (The pre-core validator re-emitted
// states reached by different fault orders — e.g. drop A then B vs drop B
// then A — inflating states_explored and DFS branching quadratically with
// max_faults_per_step >= 2.)
#pragma once

#include <atomic>
#include <functional>
#include <unordered_set>
#include <vector>

#include "spec/sharded_state_store.h"
#include "spec/spec.h"
#include "spec/symmetry.h"

namespace scv::spec
{
  template <SpecState S>
  class Expander
  {
  public:
    Expander() = default;

    /// Binds the spec whose constraint gates expansion. The spec must
    /// outlive the Expander.
    explicit Expander(const SpecDef<S>* spec) : spec_(spec) {}

    /// State constraint (§4): successors of states violating it are not
    /// explored. An unbound Expander (trace validation) has no constraint.
    [[nodiscard]] bool within_constraint(const S& s) const
    {
      return spec_ == nullptr || spec_->within_constraint(s);
    }

    /// Symmetry reduction (docs/SPEC.md): when enabled, fingerprint_of()
    /// keys states by their canonical orbit representative, so every
    /// admit() dedups modulo the spec's symmetry group. Bodies stay
    /// concrete — only the dedup key canonicalizes. No-op without a
    /// bound spec carrying a Symmetry hook.
    void enable_symmetry(bool on)
    {
      symmetry_on_ = on && spec_ != nullptr && spec_->has_symmetry();
    }

    [[nodiscard]] bool symmetry_enabled() const
    {
      return symmetry_on_;
    }

    /// Canonicalizer invocations (== fingerprints taken with symmetry on).
    [[nodiscard]] uint64_t canonicalized_count() const
    {
      return counters_.canonicalized.load(std::memory_order_relaxed);
    }

    /// Canonicalizations that actually relabeled (non-identity orbit
    /// representative) — the states symmetry folded onto a sibling.
    [[nodiscard]] uint64_t symmetry_hit_count() const
    {
      return counters_.hits.load(std::memory_order_relaxed);
    }

    [[nodiscard]] uint64_t fingerprint_of(const S& s) const
    {
      if (!symmetry_on_)
      {
        return fingerprint(s);
      }
      bool changed = false;
      const uint64_t fp = canonical_fingerprint(spec_->symmetry, s, &changed);
      counters_.canonicalized.fetch_add(1, std::memory_order_relaxed);
      if (changed)
      {
        counters_.hits.fetch_add(1, std::memory_order_relaxed);
      }
      return fp;
    }

    /// Tags every subsequent admission with the discovering engine — set
    /// by campaign runs sharing one store across engines (the store
    /// reports per-origin first-discovery counts). Standalone engines
    /// leave the default 0.
    void set_origin(uint8_t origin)
    {
      origin_ = origin;
    }

    [[nodiscard]] uint8_t origin() const
    {
      return origin_;
    }

    /// Fingerprint-first insert into a store: dedup and predecessor
    /// bookkeeping in one call.
    [[nodiscard]] typename ShardedStateStore<S>::InsertResult admit(
      ShardedStateStore<S>& store,
      const S& state,
      typename ShardedStateStore<S>::Id parent,
      uint32_t action,
      uint32_t depth) const
    {
      return store.insert(
        state, fingerprint_of(state), parent, action, depth, origin_);
    }

    /// Same, but keyed by a caller-salted fingerprint (the trace validator
    /// scopes dedup per line by salting with the line number).
    [[nodiscard]] typename ShardedStateStore<S>::InsertResult admit_keyed(
      ShardedStateStore<S>& store,
      const S& state,
      uint64_t key,
      typename ShardedStateStore<S>::Id parent,
      uint32_t action,
      uint32_t depth) const
    {
      return store.insert(state, key, parent, action, depth, origin_);
    }

    /// Fault expander (e.g. "drop any one in-flight message"), composed
    /// 0..max_layers times before each expansion. Pass an empty function to
    /// disable.
    void set_fault(
      std::function<void(const S&, const Emit<S>&)> fault, size_t max_layers)
    {
      fault_ = std::move(fault);
      max_fault_layers_ = max_layers;
    }

    [[nodiscard]] bool has_fault() const
    {
      return static_cast<bool>(fault_) && max_fault_layers_ > 0;
    }

    /// Emits `state` and every *distinct* state reachable from it by up to
    /// max_layers applications of the fault expander (deduplicated by
    /// fingerprint across the whole closure, including `state` itself).
    ///
    /// The base state is emitted unconditionally — callers gate it
    /// themselves before asking for the closure (the trace validator's
    /// searches must consider the un-faulted state even where an engine
    /// would prune it). Fault-generated states, by contrast, honor the
    /// bound spec's state constraint: a closure step that leaves the
    /// constraint is neither emitted nor expanded further, exactly as the
    /// engines never expand out-of-constraint states. An unbound Expander
    /// (trace validation) has no constraint, so nothing is gated there.
    ///
    /// Not reentrant: the emit callback must not call with_faults() on
    /// the same thread (the per-thread scratch below is reused across
    /// calls; no caller nests closures).
    void with_faults(const S& state, const Emit<S>& emit) const
    {
      emit(state);
      if (!has_fault())
      {
        return;
      }
      // Per-thread scratch: the closure runs per trace line in DFS
      // validation, so the set and layer vectors must not reallocate
      // from scratch on every call.
      thread_local std::unordered_set<uint64_t> seen;
      thread_local std::vector<S> layer;
      thread_local std::vector<S> next_layer;
      seen.clear();
      layer.clear();
      seen.insert(fingerprint_of(state));
      layer.push_back(state);
      for (size_t k = 0; k < max_fault_layers_; ++k)
      {
        next_layer.clear();
        for (const S& s : layer)
        {
          fault_(s, [&](const S& f) {
            if (!within_constraint(f))
            {
              return;
            }
            if (seen.insert(fingerprint_of(f)).second)
            {
              next_layer.push_back(f);
              emit(f);
            }
          });
        }
        if (next_layer.empty())
        {
          break;
        }
        layer.swap(next_layer);
      }
      layer.clear();
      next_layer.clear();
    }

  private:
    /// Copyable relaxed counters: engines copy Expanders only while
    /// quiescent (e.g. simulator fan-out construction), so a plain load
    /// snapshot is exact.
    struct Counters
    {
      std::atomic<uint64_t> canonicalized{0};
      std::atomic<uint64_t> hits{0};

      Counters() = default;
      Counters(const Counters& other) :
        canonicalized(other.canonicalized.load(std::memory_order_relaxed)),
        hits(other.hits.load(std::memory_order_relaxed))
      {}
      Counters& operator=(const Counters& other)
      {
        canonicalized.store(
          other.canonicalized.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
        hits.store(
          other.hits.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
        return *this;
      }
    };

    const SpecDef<S>* spec_ = nullptr;
    std::function<void(const S&, const Emit<S>&)> fault_;
    size_t max_fault_layers_ = 0;
    uint8_t origin_ = 0;
    bool symmetry_on_ = false;
    mutable Counters counters_;
  };
}
