// Multi-worker randomized simulation (§4, scaled out).
//
// The paper leans on simulation when exhaustive checking gets too slow;
// random walks are embarrassingly parallel, so the scaling move is to fan
// independent seeded walks across a worker pool. Worker w runs a private
// Simulator with seed = base_seed + w (per-seed walks are bit-reproducible
// regardless of the worker count), and the results are merged at the end:
// behavior and transition counts are summed, action coverage maps are
// merged, and the per-worker fingerprint sets are unioned so
// distinct_states measures *joint* coverage rather than the sum of
// overlapping walks.
//
// A violation in any worker raises a shared stop flag that winds the
// sibling workers down; the counterexample reported is the one from the
// lowest-indexed violating worker, which makes the merged result
// deterministic for a fixed (seed, threads) pair up to stop timing (the
// flag only truncates sibling walks, it never changes their content).
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "spec/budget.h"
#include "spec/simulator.h"
#include "spec/spec.h"
#include "spec/worker_pool.h"

namespace scv::spec
{
  template <SpecState S>
  class ParallelSimulator
  {
  public:
    ParallelSimulator(const SpecDef<S>& spec, SimOptions options = {}) :
      spec_(spec),
      options_(options)
    {}

    /// Per-state observer, shared by all workers. Calls are serialized on
    /// an internal mutex, so the callback itself need not be thread-safe.
    void set_observer(std::function<void(const S&)> observer)
    {
      observer_ = std::move(observer);
    }

    /// Q-learning feature hash, forwarded to every worker (each worker
    /// learns its own Q table). Must be a pure function of the state.
    void set_q_features(std::function<uint64_t(const S&)> features)
    {
      q_features_ = features;
    }

    SimResult<S> run()
    {
      const WorkerPool pool(options_.threads);
      const unsigned threads = pool.size();
      if (threads == 1)
      {
        Simulator<S> sim(spec_, options_);
        if (observer_)
        {
          sim.set_observer(observer_);
        }
        if (q_features_)
        {
          sim.set_q_features(q_features_);
        }
        return sim.run();
      }

      // Workers apply their own (shared-caps) budgets; this one only
      // times the merged run.
      const Budget budget(options_.budget_caps());
      std::atomic<bool> stop{false};
      std::vector<SimResult<S>> results(threads);
      std::mutex observer_mu;

      const auto work = [&](unsigned w) {
        SimOptions options = options_;
        options.seed = options_.seed + w;
        options.max_behaviors = behaviors_share(threads, w);
        Simulator<S> sim(spec_, options);
        sim.set_stop_flag(&stop);
        if (observer_)
        {
          sim.set_observer([this, &observer_mu](const S& s) {
            std::lock_guard<std::mutex> lock(observer_mu);
            observer_(s);
          });
        }
        if (q_features_)
        {
          sim.set_q_features(q_features_);
        }
        results[w] = sim.run();
        if (!results[w].ok)
        {
          stop.store(true, std::memory_order_release);
        }
      };

      pool.run(work);

      SimResult<S> merged;
      for (unsigned w = 0; w < threads; ++w)
      {
        SimResult<S>& r = results[w];
        merged.behaviors += r.behaviors;
        merged.stats.absorb_counts(r.stats);
        if (!r.ok && merged.ok)
        {
          merged.ok = false;
          merged.counterexample = std::move(r.counterexample);
        }
        merged.distinct_fingerprints.merge(r.distinct_fingerprints);
      }
      merged.stats.distinct_states = merged.distinct_fingerprints.size();
      merged.stats.seconds = budget.elapsed();
      merged.stats.complete = false;
      return merged;
    }

  private:
    /// Splits options_.max_behaviors across workers (first workers take
    /// the remainder); an unlimited budget stays unlimited everywhere.
    [[nodiscard]] uint64_t behaviors_share(unsigned threads, unsigned w) const
    {
      if (options_.max_behaviors == UINT64_MAX)
      {
        return UINT64_MAX;
      }
      const uint64_t base = options_.max_behaviors / threads;
      const uint64_t remainder = options_.max_behaviors % threads;
      return base + (w < remainder ? 1 : 0);
    }

    const SpecDef<S>& spec_;
    SimOptions options_;
    std::function<void(const S&)> observer_;
    std::function<uint64_t(const S&)> q_features_;
  };

  /// Entry point: dispatches on SimOptions::threads.
  template <SpecState S>
  SimResult<S> simulate(const SpecDef<S>& spec, SimOptions options = {})
  {
    if (resolve_worker_count(options.threads) == 1)
    {
      Simulator<S> sim(spec, options);
      return sim.run();
    }
    ParallelSimulator<S> sim(spec, options);
    return sim.run();
  }
}
