// Deprecated shim: ParallelSimulator folded into Simulator.
//
// Simulator::run() now dispatches on SimOptions::threads itself
// (threads = 1 single-threaded walk loop, threads != 1 independent seeded
// walks across a WorkerPool), the same way TraceValidator always has. The
// old class name remains as an alias for one deprecation cycle.
#pragma once

#include "spec/simulator.h"

namespace scv::spec
{
  template <SpecState S>
  using ParallelSimulator
    [[deprecated("use Simulator; run() dispatches on threads")]] =
      Simulator<S>;
}
