// Storage-mode knobs for the sharded fingerprint store, factored into
// their own header so engine.h (EngineOptions) can carry them without
// pulling in the whole store template.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace scv::spec
{
  /// How much of each state the store retains (docs/SPEC.md "Store
  /// modes").
  enum class StoreMode : uint8_t
  {
    /// Every state body is kept for the lifetime of the store; dedup
    /// falls back to a full operator== compare on 64-bit fingerprint
    /// collision. Bit-identical to the pre-mode store.
    full,
    /// TLC-style: only the 64-bit fingerprint, the 16-byte hot record
    /// (parent, action, depth, origin) and the frontier's bodies are
    /// kept; a state's body is dropped once it leaves the frontier.
    /// Dedup is by fingerprint alone — two distinct states sharing a
    /// fingerprint are conflated (probability ~ n^2 / 2^65 for n
    /// states). Counterexamples and witnesses are rebuilt by replaying
    /// the recorded action chain from the initial states
    /// (ShardedStateStore::reconstruct_path).
    fingerprint_only,
  };

  struct StoreOptions
  {
    StoreMode mode = StoreMode::full;
    /// Soft ceiling on store_bytes(). 0 = unlimited. Engines treat
    /// crossing it like an exhausted work budget (the run ends
    /// incomplete); with a spill_dir it also sets the per-shard arena
    /// threshold above which maybe_spill() moves frozen record blocks
    /// to disk.
    size_t memory_budget_bytes = 0;
    /// Directory for per-shard spill files (created lazily, unlinked
    /// immediately, mmap'd back read-only). Empty = spill disabled.
    std::string spill_dir;
    /// Dedup by fingerprint alone even in full mode (bodies are still
    /// retained, so counterexamples read the chain directly). Engines set
    /// this when symmetry reduction is on: orbit-equivalent states share
    /// a canonical fingerprint but differ under operator==, so full
    /// mode's collision fallback would re-admit every orbit sibling and
    /// the reduction would silently vanish. Accepts the same ~n^2/2^65
    /// collision-conflation trade fingerprint_only mode documents.
    bool dedup_by_fingerprint = false;

    [[nodiscard]] bool fingerprint_only() const
    {
      return mode == StoreMode::fingerprint_only;
    }

    [[nodiscard]] bool fingerprint_dedup() const
    {
      return fingerprint_only() || dedup_by_fingerprint;
    }

    [[nodiscard]] bool spill_enabled() const
    {
      return !spill_dir.empty();
    }
  };

  [[nodiscard]] constexpr const char* store_mode_name(StoreMode mode)
  {
    return mode == StoreMode::fingerprint_only ? "fingerprint_only" : "full";
  }
}
