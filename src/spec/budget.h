// Unified exploration budget.
//
// Every engine in the exploration core — exhaustive checking, randomized
// simulation, and trace validation — bounds its search the same three
// ways: a wall-clock deadline, a cap on some monotone work counter
// (distinct states, behaviors, or emitted candidates; the engine picks the
// unit), and a depth cap. Before this type each engine hand-rolled its own
// chrono arithmetic and comparison; now a run constructs one Budget from
// its options struct (CheckLimits::budget_caps(), SimOptions::budget_caps(),
// ValidationOptions::budget_caps()) and routes every "should I keep
// going?" decision through exhausted().
//
// A Budget can also carry an external cooperative-stop flag (the parallel
// engines' "a sibling worker found a violation" signal); a raised flag
// reads as an expired deadline so the wind-down path is shared too.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace scv::spec
{
  class Budget
  {
  public:
    struct Caps
    {
      double time_budget_seconds = 1e18;
      /// Cap on the engine's work counter. The unit is engine-defined:
      /// distinct states (checker), behaviors (simulator), or emitted
      /// candidate states (trace validator).
      uint64_t max_states = UINT64_MAX;
      uint64_t max_depth = UINT64_MAX;
    };

    /// The clock starts at construction; build the Budget when the run
    /// starts (or call restart()).
    Budget() : Budget(Caps{}) {}
    explicit Budget(const Caps& caps) :
      caps_(caps),
      started_(std::chrono::steady_clock::now())
    {}

    void restart()
    {
      started_ = std::chrono::steady_clock::now();
    }

    /// Cooperative stop (may be null). A raised flag counts as an expired
    /// deadline. The flag must outlive the Budget.
    void set_stop_flag(const std::atomic<bool>* stop)
    {
      stop_ = stop;
    }

    [[nodiscard]] double elapsed() const
    {
      return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - started_)
        .count();
    }

    /// Wall-clock seconds left before the deadline (never negative; an
    /// effectively-unlimited budget reports its huge cap unchanged).
    [[nodiscard]] double remaining_seconds() const
    {
      const double left = caps_.time_budget_seconds - elapsed();
      return left > 0.0 ? left : 0.0;
    }

    /// Parent/child split: a child budget whose clock starts now and whose
    /// deadline is `seconds`, clamped so a child can never outlive its
    /// parent's remaining time. The child inherits the parent's stop flag,
    /// so a campaign-wide cooperative stop winds every phase down. Used by
    /// the TimeBox scheduler (campaign.h) to hand each phase its share of
    /// one shared wall-clock box.
    [[nodiscard]] Budget child(
      double seconds,
      uint64_t max_states = UINT64_MAX,
      uint64_t max_depth = UINT64_MAX) const
    {
      Budget b(Caps{
        seconds < remaining_seconds() ? seconds : remaining_seconds(),
        max_states,
        max_depth});
      b.stop_ = stop_;
      return b;
    }

    [[nodiscard]] bool stopped() const
    {
      return stop_ != nullptr && stop_->load(std::memory_order_acquire);
    }

    [[nodiscard]] bool time_exhausted() const
    {
      return stopped() || elapsed() > caps_.time_budget_seconds;
    }

    [[nodiscard]] bool states_exhausted(uint64_t states) const
    {
      return states >= caps_.max_states;
    }

    /// The one check every engine loop makes: deadline hit, stop flag
    /// raised, or the work counter at its cap.
    [[nodiscard]] bool exhausted(uint64_t states) const
    {
      return time_exhausted() || states_exhausted(states);
    }

    /// Depth caps are not exhaustion: a too-deep state is skipped, not a
    /// reason to end the run (the classic BFS depth bound).
    [[nodiscard]] bool depth_exceeded(uint64_t depth) const
    {
      return depth >= caps_.max_depth;
    }

    [[nodiscard]] const Caps& caps() const
    {
      return caps_;
    }

  private:
    Caps caps_;
    std::chrono::steady_clock::time_point started_;
    const std::atomic<bool>* stop_ = nullptr;
  };
}
