#include "spec/stats.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace scv::spec
{
  double ExplorationStats::states_per_minute() const
  {
    return states_per_second() * 60.0;
  }

  double ExplorationStats::states_per_second() const
  {
    if (seconds <= 0.0)
    {
      return 0.0;
    }
    return static_cast<double>(generated_states) / seconds;
  }

  std::string ExplorationStats::summary() const
  {
    std::ostringstream os;
    os << "distinct=" << distinct_states << " generated=" << generated_states
       << " transitions=" << transitions << " duplicates=" << duplicate_states
       << " memo_hits=" << memo_hits << " steals=" << steals;
    if (seeded_states > 0)
    {
      // Campaign-only field; standalone summaries are unchanged.
      os << " seeded=" << seeded_states;
    }
    if (canonicalized_states > 0)
    {
      // Symmetry-only fields; symmetry-off summaries are unchanged.
      os << " canonicalized=" << canonicalized_states
         << " symmetry_hits=" << symmetry_hits;
    }
    if (store_bytes > 0)
    {
      os << " store_bytes=" << store_bytes;
      if (spilled_bytes > 0)
      {
        os << " spilled_bytes=" << spilled_bytes;
      }
      os << " rehashes=" << rehash_count;
    }
    os << " depth=" << max_depth << " seconds=" << seconds
       << " states/min=" << states_per_minute()
       << (complete ? " (complete)" : " (bounded)");
    return os.str();
  }

  void ExplorationStats::absorb_counts(const ExplorationStats& other)
  {
    generated_states += other.generated_states;
    transitions += other.transitions;
    duplicate_states += other.duplicate_states;
    memo_hits += other.memo_hits;
    steals += other.steals;
    seeded_states += other.seeded_states;
    canonicalized_states += other.canonicalized_states;
    symmetry_hits += other.symmetry_hits;
    max_depth = std::max(max_depth, other.max_depth);
    // Store metrics are snapshots of a (possibly shared) store, not
    // per-run counters: merging takes the largest snapshot.
    store_bytes = std::max(store_bytes, other.store_bytes);
    spilled_bytes = std::max(spilled_bytes, other.spilled_bytes);
    rehash_count = std::max(rehash_count, other.rehash_count);
    for (const auto& [name, count] : other.action_coverage)
    {
      action_coverage[name] += count;
    }
  }

  std::string ExplorationStats::coverage_report() const
  {
    std::vector<std::pair<std::string, uint64_t>> rows(
      action_coverage.begin(), action_coverage.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    std::ostringstream os;
    for (const auto& [name, count] : rows)
    {
      os << "  " << name << ": " << count << "\n";
    }
    return os.str();
  }
}
