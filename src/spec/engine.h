// Common engine surface shared by the three exploration engines.
//
// The checker, the simulator, and the trace validator each grew their own
// options struct and result struct; campaigns (campaign.h) compose all
// three, so the shared shape is factored here:
//   * EngineId     — who discovered a state. The ShardedStateStore tags
//                    every admission with the discovering engine so a
//                    campaign can report per-engine and unioned coverage.
//   * EngineOptions— the knobs every engine agrees on: the wall-clock
//                    deadline, the worker-thread convention, and the
//                    Budget::Caps assembly (each engine supplies its own
//                    work-counter and depth caps — the unit is
//                    engine-defined, the plumbing is not).
//   * EngineReport — the result fields every engine agrees on: the
//                    verdict and the ExplorationStats. CheckResult,
//                    SimResult and ValidationResult all derive from it,
//                    so campaign output and bench JSON emission take any
//                    engine's result through one code path.
//
// The `threads` semantics are documented once, in docs/SPEC.md
// ("threads semantics"): 1 = the sequential reference engine
// (bit-identical results), 0 = one worker per hardware thread, N > 1 =
// N workers with identical verdicts/totals.
#pragma once

#include <cstdint>

#include "spec/budget.h"
#include "spec/stats.h"
#include "spec/store_options.h"

namespace scv::spec
{
  /// The engine that discovered a state / produced a report. Stored as a
  /// one-byte origin tag on ShardedStateStore records.
  enum class EngineId : uint8_t
  {
    None = 0,
    Checker = 1,
    Simulator = 2,
    Validator = 3,
    /// Randomized fault-injection campaigns (driver-level nemesis). Does
    /// not admit spec states to the store; the id exists so a campaign
    /// can schedule and report a nemesis phase next to the spec engines.
    Nemesis = 4,
  };

  [[nodiscard]] constexpr const char* engine_name(EngineId id)
  {
    switch (id)
    {
      case EngineId::Checker:
        return "checker";
      case EngineId::Simulator:
        return "simulator";
      case EngineId::Validator:
        return "validator";
      case EngineId::Nemesis:
        return "nemesis";
      case EngineId::None:
        break;
    }
    return "none";
  }

  /// Options fields common to CheckLimits, SimOptions and
  /// ValidationOptions. Derived structs keep their domain-named work
  /// caps (max_distinct_states / max_behaviors / max_states) and build
  /// their Budget::Caps through make_caps().
  struct EngineOptions
  {
    /// Wall-clock budget for the whole run.
    double time_budget_seconds = 1e18;
    /// Worker threads — see docs/SPEC.md "threads semantics":
    /// 1 = sequential reference engine (bit-identical), 0 = one worker
    /// per hardware thread, N > 1 = N workers.
    unsigned threads = 1;
    /// Symmetry reduction (docs/SPEC.md "Symmetry reduction"): dedup
    /// states modulo the spec's Symmetry group by fingerprinting each
    /// state's canonical orbit representative. Inert when the spec
    /// carries no Symmetry hook. The trace validator ignores the flag
    /// for its search — trace lines name concrete identities.
    bool symmetry = false;
    /// State-store knobs for the engine's private store (docs/SPEC.md
    /// "Store modes"): full vs fingerprint-only retention, the byte
    /// ceiling (crossing it ends the run like an exhausted budget), and
    /// the optional spill directory. Engines attached to a shared
    /// campaign store use the campaign's store options instead.
    StoreOptions store;

    /// Assembles the exploration-core budget from the shared deadline and
    /// the engine's own work/depth caps.
    [[nodiscard]] Budget::Caps make_caps(
      uint64_t max_work, uint64_t max_depth) const
    {
      return {time_budget_seconds, max_work, max_depth};
    }
  };

  /// Result fields common to CheckResult, SimResult and ValidationResult:
  /// the verdict and the unified statistics. Campaign phase tables and
  /// bench_util JSON emission consume engine results through this base.
  struct EngineReport
  {
    /// Verdict: no violation found (checker/simulator) or the trace
    /// matched (validator).
    bool ok = true;
    /// Which engine produced this report.
    EngineId engine = EngineId::None;
    ExplorationStats stats;
  };
}
