// Canonicalization under a Symmetry<S> group (docs/SPEC.md "Symmetry
// reduction").
//
// canonical_fingerprint() maps every member of a state's orbit to the same
// 64-bit fingerprint by picking a canonical representative: the orbit
// member with the lexicographically-least serialized bytes (among the
// candidates considered). The Expander fingerprints that representative,
// so every engine dedups modulo symmetry without touching concrete state
// bodies — stored bodies, predecessor links and counterexamples stay
// concrete.
//
// Two regimes:
//   * Full symmetric group (Symmetry::group empty): the fast path sorts
//     identities by their label-invariant signature — distinct signatures
//     pin a unique canonical relabeling with ONE apply+serialize. Tied
//     signatures form blocks; only permutations within tie blocks are
//     enumerated (product of block factorials, not domain!), and the
//     lexicographically-least serialization wins.
//   * Restricted group (Symmetry::group non-empty): every group element
//     is applied and the least serialization wins. Groups are small in
//     practice (<= 5 permutable nodes => <= 120 elements).
//
// Orbit-invariance of the result only needs the signature to be
// covariant (sig(apply(s, p), p[i]) == sig(s, i)): both s and apply(s, p)
// then yield the same candidate set, hence the same least serialization.
// A weak (collision-prone) signature merely enlarges tie blocks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "spec/spec.h"
#include "util/check.h"

namespace scv::spec
{
  namespace symmetry_detail
  {
    template <SpecState S>
    void serialize_into(const S& state, ByteSink& sink)
    {
      sink.clear();
      state.serialize(sink);
    }

    inline bool lex_less(
      const std::vector<uint8_t>& a, const std::vector<uint8_t>& b)
    {
      return std::lexicographical_compare(
        a.begin(), a.end(), b.begin(), b.end());
    }

    inline bool is_identity(const Perm& perm)
    {
      for (size_t i = 0; i < perm.size(); ++i)
      {
        if (perm[i] != i)
        {
          return false;
        }
      }
      return true;
    }

    /// Shared implementation: computes the canonical representative's
    /// serialized bytes (into `best`) and optionally the representative
    /// itself (into *best_state when non-null). Returns true when the
    /// representative differs from the input state.
    ///
    /// The representative is the lexicographic minimum over the CANDIDATE
    /// set only — the input itself participates exactly when the identity
    /// is a candidate. (Seeding `best` with the input unconditionally
    /// would break orbit invariance: the sorted-signature fast path
    /// considers a single relabeling, which is the identity for the orbit
    /// member that is already sorted but not for its siblings, so the
    /// siblings would keep their own bytes whenever those happen to
    /// compare lower.)
    template <SpecState S>
    bool canonical_bytes(
      const Symmetry<S>& sym,
      const S& state,
      std::vector<uint8_t>& best,
      S* best_state)
    {
      // Scratch reused per thread: canonicalization runs on every
      // generated state, so candidate serialization must not allocate in
      // steady state.
      thread_local ByteSink scratch;
      thread_local std::vector<uint8_t> input;

      serialize_into(state, scratch);
      input = scratch.bytes();
      best.clear();
      bool have = false;

      const auto consider = [&](const Perm& perm) {
        if (is_identity(perm))
        {
          // The identity's candidate is the input itself — no apply.
          if (!have || lex_less(input, best))
          {
            best = input;
            if (best_state != nullptr)
            {
              *best_state = state;
            }
          }
          have = true;
          return;
        }
        const S candidate = sym.apply(state, perm);
        serialize_into(candidate, scratch);
        if (!have || lex_less(scratch.bytes(), best))
        {
          best = scratch.bytes();
          have = true;
          if (best_state != nullptr)
          {
            *best_state = candidate;
          }
        }
      };

      if (!sym.group.empty())
      {
        // Restricted group: every element is a candidate (a group always
        // contains the identity, so the input is too).
        for (const Perm& perm : sym.group)
        {
          consider(perm);
        }
        return best != input;
      }

      const size_t k = sym.domain ? sym.domain(state) : 0;
      if (k <= 1)
      {
        best = input;
        return false;
      }
      SCV_CHECK(k <= 16); // enumeration fallback is factorial in ties

      // Full symmetric group: sort identities by covariant signature.
      std::vector<uint64_t> sig(k, 0);
      if (sym.signature)
      {
        for (size_t i = 0; i < k; ++i)
        {
          sig[i] = sym.signature(state, i);
        }
      }
      std::vector<uint8_t> order(k);
      std::iota(order.begin(), order.end(), uint8_t{0});
      std::stable_sort(order.begin(), order.end(), [&](uint8_t a, uint8_t b) {
        return sig[a] < sig[b];
      });

      bool ties = false;
      for (size_t p = 0; p + 1 < k && !ties; ++p)
      {
        ties = sig[order[p]] == sig[order[p + 1]];
      }

      Perm perm(k);
      if (!ties)
      {
        // Distinct signatures pin the canonical relabeling: identity
        // order[p] takes position p.
        for (size_t p = 0; p < k; ++p)
        {
          perm[order[p]] = static_cast<uint8_t>(p);
        }
        consider(perm);
        return best != input;
      }

      // Tie blocks: enumerate permutations of identities *within* each
      // block of equal signatures (an odometer of per-block
      // next_permutation sweeps), never across blocks.
      std::vector<std::pair<size_t, size_t>> blocks; // [start, end)
      for (size_t p = 0; p < k;)
      {
        size_t q = p + 1;
        while (q < k && sig[order[q]] == sig[order[p]])
        {
          ++q;
        }
        blocks.emplace_back(p, q);
        p = q;
      }
      // Canonical start point for enumeration: sort each block's
      // identities ascending so the sweep is the same from every orbit
      // member.
      for (const auto& [start, end] : blocks)
      {
        std::sort(order.begin() + start, order.begin() + end);
      }
      for (;;)
      {
        for (size_t p = 0; p < k; ++p)
        {
          perm[order[p]] = static_cast<uint8_t>(p);
        }
        consider(perm);
        // Odometer step: advance the first block with a next permutation,
        // resetting the blocks before it.
        size_t b = 0;
        for (; b < blocks.size(); ++b)
        {
          const auto [start, end] = blocks[b];
          if (std::next_permutation(
                order.begin() + start, order.begin() + end))
          {
            break;
          }
          // next_permutation wrapped this block back to sorted order.
        }
        if (b == blocks.size())
        {
          break;
        }
      }
      return best != input;
    }
  }

  /// The canonical orbit representative of `state`. Sets *changed (when
  /// non-null) to whether the representative differs from the input.
  template <SpecState S>
  S canonicalize(const Symmetry<S>& sym, const S& state, bool* changed = nullptr)
  {
    S best = state;
    std::vector<uint8_t> bytes;
    const bool c =
      sym.enabled() ?
      symmetry_detail::canonical_bytes(sym, state, bytes, &best) :
      false;
    if (changed != nullptr)
    {
      *changed = c;
    }
    return best;
  }

  /// Fingerprint of the canonical representative — equal for every member
  /// of an orbit. The representative itself is never materialized beyond
  /// its serialization.
  template <SpecState S>
  uint64_t canonical_fingerprint(
    const Symmetry<S>& sym, const S& state, bool* changed = nullptr)
  {
    if (!sym.enabled())
    {
      if (changed != nullptr)
      {
        *changed = false;
      }
      return fingerprint(state);
    }
    std::vector<uint8_t> bytes;
    const bool c =
      symmetry_detail::canonical_bytes<S>(sym, state, bytes, nullptr);
    if (changed != nullptr)
    {
      *changed = c;
    }
    return fnv1a(bytes.data(), bytes.size());
  }
}
