// Randomized simulation of a spec (§4).
//
// The paper found exhaustive model checking too slow for CI once the
// consensus spec modeled reconfiguration, and fell back to simulation: a
// time-quota'd random walk over behaviors up to a given depth. Coverage is
// improved by *action weighting* — failure actions (message drops,
// timeouts) are down-weighted so walks make more forward progress. The
// weight field on Action feeds the weighted pick here; a weight override
// map supports the manual-vs-uniform weighting experiment
// (bench/sim_weighting).
//
// One engine, one entry point: Simulator::run() (and the free function
// simulate()) dispatch on SimOptions::threads:
//   * threads = 1 runs the single-threaded walk loop; per-seed walks are
//     bit-reproducible.
//   * threads != 1 fans independent seeded walks across a WorkerPool —
//     worker w runs a private child simulator with seed = base_seed + w,
//     results merged at the end (counts summed, coverage maps merged,
//     per-worker fingerprint sets unioned so distinct_states measures
//     *joint* coverage). A violation in any worker raises a shared stop
//     flag; the lowest-indexed violating worker's counterexample wins.
//
// Campaign mode (campaign.h): attach_store() admits every visited state
// into a shared ShardedStateStore (tagged with the simulator's EngineId),
// so cross-engine coverage is unioned instead of double-counted —
// distinct_states then reports only states *this run* discovered first.
// set_walk_seeds() starts walks from the checker's leftover BFS frontier
// instead of the spec's initial states.
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "spec/budget.h"
#include "spec/engine.h"
#include "spec/expander.h"
#include "spec/sharded_state_store.h"
#include "spec/spec.h"
#include "spec/stats.h"
#include "spec/worker_pool.h"
#include "util/rng.h"

namespace scv::spec
{
  enum class WeightingMode
  {
    /// All enabled actions equally likely.
    Uniform,
    /// Static per-action weights from the spec (the paper's manual
    /// weighting of failure actions, §4).
    Static,
    /// Q-learning over (state features, action) pairs, rewarding novel
    /// states — the paper's attempt at automatic weighting ("we were
    /// unable to find the right set of variables as input to Q-Learning's
    /// state hash function H that achieved better coverage at the same
    /// cost compared to manual weighting").
    QLearning,
  };

  struct SimOptions : EngineOptions
  {
    SimOptions()
    {
      // Simulation is quota-driven: default to a 1-second box rather than
      // the engine-wide "effectively unlimited".
      time_budget_seconds = 1.0;
    }

    uint64_t seed = 1;
    uint64_t max_behaviors = UINT64_MAX;
    /// Bounds each walk rather than the whole run.
    uint64_t max_depth = 50;
    /// When false, all actions are treated as weight 1 (uniform pick).
    /// Kept for backwards compatibility: false forces Uniform mode.
    bool use_weights = true;
    WeightingMode mode = WeightingMode::Static;
    /// Track the set of distinct fingerprints visited (costs memory).
    bool track_distinct = true;

    // Q-learning hyperparameters.
    double q_alpha = 0.3; // learning rate
    double q_gamma = 0.7; // discount
    double q_epsilon = 0.1; // exploration probability

    /// The exploration-core budget: work counter = behaviors started.
    [[nodiscard]] Budget::Caps budget_caps() const
    {
      return make_caps(max_behaviors, max_depth);
    }
  };

  template <SpecState S>
  struct SimResult : EngineReport
  {
    SimResult()
    {
      engine = EngineId::Simulator;
    }

    std::optional<Counterexample<S>> counterexample;
    uint64_t behaviors = 0;
    /// The visited fingerprint set (when track_distinct); the fan-out path
    /// unions these across workers to measure joint coverage.
    std::unordered_set<uint64_t> distinct_fingerprints;
  };

  template <SpecState S>
  class Simulator
  {
  public:
    Simulator(const SpecDef<S>& spec, SimOptions options = {}) :
      spec_(spec),
      options_(options),
      rng_(options.seed),
      expander_(&spec_)
    {
      expander_.enable_symmetry(options_.symmetry);
    }

    /// Optional per-state observer for domain-specific coverage metrics.
    /// On the fan-out path calls are serialized on an internal mutex, so
    /// the callback itself need not be thread-safe.
    void set_observer(std::function<void(const S&)> observer)
    {
      observer_ = std::move(observer);
    }

    /// Q-learning state-feature hash H: maps a state to the bucket whose
    /// action values are learned. Defaults to the full fingerprint; the
    /// paper's difficulty was exactly choosing a coarser H that
    /// generalizes (§4). Forwarded to every fan-out worker (each worker
    /// learns its own Q table); must be a pure function of the state.
    void set_q_features(std::function<uint64_t(const S&)> features)
    {
      q_features_ = std::move(features);
    }

    /// Optional cooperative stop: when the flag becomes true the run winds
    /// down as if the time budget expired. The fan-out path uses this to
    /// halt sibling workers once one of them finds a violation.
    void set_stop_flag(const std::atomic<bool>* stop)
    {
      external_stop_ = stop;
    }

    /// Campaign mode: admit every visited state into `store` (shared with
    /// other engines, never cleared), tagged `origin`. distinct_states in
    /// the result then counts only first discoveries by this run — states
    /// another engine already found are not re-counted. The store must
    /// outlive the simulator.
    void attach_store(
      ShardedStateStore<S>* store, EngineId origin = EngineId::Simulator)
    {
      store_ = store;
      expander_.set_origin(static_cast<uint8_t>(origin));
    }

    /// Campaign mode: start walks from these states (chosen uniformly)
    /// instead of the spec's initial states — typically the checker's
    /// leftover BFS frontier. Empty reverts to spec_.init.
    void set_walk_seeds(std::vector<S> seeds)
    {
      seeds_ = std::move(seeds);
    }

    /// Unified entry point: dispatches on SimOptions::threads (see
    /// docs/SPEC.md "threads semantics").
    SimResult<S> run()
    {
      if (resolve_worker_count(options_.threads) == 1)
      {
        return run_single();
      }
      return run_fanout();
    }

  private:
    using Store = ShardedStateStore<S>;
    using Id = typename Store::Id;

    SimResult<S> run_single()
    {
      // Time (or the external stop flag) exhausts a behavior mid-walk; the
      // behavior cap only stops *starting* new walks.
      Budget budget(options_.budget_caps());
      budget.set_stop_flag(external_stop_);
      SimResult<S> result;
      std::unordered_set<uint64_t> distinct;
      // First discoveries by this run when a shared store is attached.
      uint64_t fresh = 0;
      const std::vector<S>& starts =
        seeds_.empty() ? spec_.init : seeds_;

      while (!budget.exhausted(result.behaviors))
      {
        result.behaviors++;
        // Pick a walk start uniformly.
        S current = starts[rng_.below(starts.size())];
        if (!seeds_.empty())
        {
          result.stats.seeded_states++;
        }
        Id cur_id = Store::no_parent;
        if (store_ != nullptr)
        {
          const auto ins = expander_.admit(
            *store_, current, Store::no_parent, Store::init_action, 0);
          fresh += ins.inserted ? 1 : 0;
          cur_id = ins.id;
          // The walk keeps its own copy of every state and builds
          // counterexamples engine-side, so a fingerprint-only store can
          // retire the body immediately.
          if (ins.inserted && store_->fingerprint_only())
          {
            store_->drop_body(ins.id);
          }
        }
        note_state(current, distinct, result);

        std::vector<TraceStep<S>> walk;
        walk.push_back({"<init>", current});

        for (uint64_t depth = 0; !budget.depth_exceeded(depth); ++depth)
        {
          if (!spec_.within_constraint(current))
          {
            break;
          }
          // Expand every action; pick among enabled ones according to the
          // weighting mode, then a successor uniformly within the chosen
          // action.
          std::vector<std::vector<S>> successors(spec_.actions.size());
          std::vector<bool> enabled(spec_.actions.size(), false);
          bool any = false;
          for (size_t a = 0; a < spec_.actions.size(); ++a)
          {
            spec_.actions[a].expand(current, [&](const S& next) {
              successors[a].push_back(next);
            });
            result.stats.generated_states += successors[a].size();
            enabled[a] = !successors[a].empty();
            any = any || enabled[a];
          }
          if (!any)
          {
            break; // deadlock
          }
          const WeightingMode mode = !options_.use_weights ?
            WeightingMode::Uniform :
            options_.mode;
          const uint64_t bucket = q_bucket(current);
          const auto picked = pick_action(mode, enabled, bucket);
          if (!picked.has_value())
          {
            break; // all enabled actions have zero weight
          }
          const size_t a = *picked;
          const S next = successors[a][rng_.below(successors[a].size())];
          result.stats.transitions++;
          result.stats.action_coverage[spec_.actions[a].name]++;

          if (mode == WeightingMode::QLearning)
          {
            // Reward novelty; bootstrap from the best known value of the
            // successor bucket. Keyed like note_state() so the distinct
            // lookup matches (canonical when symmetry is on).
            const uint64_t next_fp = expander_.fingerprint_of(next);
            const double reward =
              options_.track_distinct && distinct.contains(next_fp) ? 0.0 :
                                                                      1.0;
            const uint64_t next_bucket =
              q_features_ ? q_features_(next) : next_fp;
            double best_next = 0.0;
            for (size_t a2 = 0; a2 < spec_.actions.size(); ++a2)
            {
              best_next = std::max(best_next, q_value(next_bucket, a2));
            }
            const double old = q_value(bucket, a);
            q_[q_key(bucket, a)] = old +
              options_.q_alpha *
                (reward + options_.q_gamma * best_next - old);
          }

          for (const auto& prop : spec_.action_properties)
          {
            if (!prop.check(current, next))
            {
              result.ok = false;
              result.counterexample = make_cex(walk, prop.name);
              result.counterexample->steps.push_back(
                {spec_.actions[a].name, next});
              finish(result, budget, distinct, fresh);
              return result;
            }
          }

          current = next;
          if (store_ != nullptr)
          {
            const auto ins = expander_.admit(
              *store_,
              current,
              cur_id,
              static_cast<uint32_t>(a),
              static_cast<uint32_t>(depth + 1));
            fresh += ins.inserted ? 1 : 0;
            cur_id = ins.id;
            if (ins.inserted && store_->fingerprint_only())
            {
              store_->drop_body(ins.id);
            }
          }
          walk.push_back({spec_.actions[a].name, current});
          note_state(current, distinct, result);
          result.stats.max_depth =
            std::max<uint64_t>(result.stats.max_depth, depth + 1);

          for (const auto& inv : spec_.invariants)
          {
            if (!inv.check(current))
            {
              result.ok = false;
              result.counterexample = make_cex(walk, inv.name);
              finish(result, budget, distinct, fresh);
              return result;
            }
          }
          if (budget.time_exhausted())
          {
            break;
          }
        }
      }

      finish(result, budget, distinct, fresh);
      return result;
    }

    // ---- threads != 1: independent seeded walks across a WorkerPool ----

    SimResult<S> run_fanout()
    {
      const WorkerPool pool(options_.threads);
      const unsigned threads = pool.size();

      // Workers apply their own (shared-caps) budgets; this one only
      // times the merged run.
      const Budget budget(options_.budget_caps());
      std::atomic<bool> stop{false};
      std::vector<SimResult<S>> results(threads);
      std::mutex observer_mu;

      const auto work = [&](unsigned w) {
        SimOptions options = options_;
        options.seed = options_.seed + w;
        options.max_behaviors = behaviors_share(threads, w);
        options.threads = 1; // children run the single-threaded loop
        Simulator<S> sim(spec_, options);
        sim.set_stop_flag(&stop);
        if (store_ != nullptr)
        {
          sim.store_ = store_;
          sim.expander_.set_origin(origin());
        }
        if (!seeds_.empty())
        {
          sim.set_walk_seeds(seeds_);
        }
        if (observer_)
        {
          sim.set_observer([this, &observer_mu](const S& s) {
            std::lock_guard<std::mutex> lock(observer_mu);
            observer_(s);
          });
        }
        if (q_features_)
        {
          sim.set_q_features(q_features_);
        }
        results[w] = sim.run();
        if (!results[w].ok)
        {
          stop.store(true, std::memory_order_release);
        }
      };

      pool.run(work);

      SimResult<S> merged;
      uint64_t fresh = 0;
      for (unsigned w = 0; w < threads; ++w)
      {
        SimResult<S>& r = results[w];
        merged.behaviors += r.behaviors;
        fresh += r.stats.distinct_states;
        merged.stats.absorb_counts(r.stats);
        if (!r.ok && merged.ok)
        {
          merged.ok = false;
          merged.counterexample = std::move(r.counterexample);
        }
        merged.distinct_fingerprints.merge(r.distinct_fingerprints);
      }
      // A shared store dedups across workers globally, so summing the
      // children's first-discovery counts is exact; otherwise joint
      // coverage is the unioned fingerprint set.
      merged.stats.distinct_states =
        store_ != nullptr ? fresh : merged.distinct_fingerprints.size();
      merged.stats.seconds = budget.elapsed();
      if (budget.caps().time_budget_seconds < 1e17)
      {
        merged.stats.budget_seconds = budget.caps().time_budget_seconds;
      }
      merged.stats.complete = false;
      return merged;
    }

    [[nodiscard]] uint8_t origin() const
    {
      return expander_.origin();
    }

    /// Splits options_.max_behaviors across workers (first workers take
    /// the remainder); an unlimited budget stays unlimited everywhere.
    [[nodiscard]] uint64_t behaviors_share(unsigned threads, unsigned w) const
    {
      if (options_.max_behaviors == UINT64_MAX)
      {
        return UINT64_MAX;
      }
      const uint64_t base = options_.max_behaviors / threads;
      const uint64_t remainder = options_.max_behaviors % threads;
      return base + (w < remainder ? 1 : 0);
    }

    [[nodiscard]] uint64_t q_bucket(const S& state) const
    {
      return q_features_ ? q_features_(state) : fingerprint(state);
    }

    [[nodiscard]] static uint64_t q_key(uint64_t bucket, size_t action)
    {
      return hash_combine(bucket, static_cast<uint64_t>(action) + 1);
    }

    [[nodiscard]] double q_value(uint64_t bucket, size_t action) const
    {
      const auto it = q_.find(q_key(bucket, action));
      return it != q_.end() ? it->second : 0.0;
    }

    std::optional<size_t> pick_action(
      WeightingMode mode,
      const std::vector<bool>& enabled,
      uint64_t bucket)
    {
      std::vector<double> weights(enabled.size(), 0.0);
      switch (mode)
      {
        case WeightingMode::Uniform:
          for (size_t a = 0; a < enabled.size(); ++a)
          {
            weights[a] = enabled[a] ? 1.0 : 0.0;
          }
          break;
        case WeightingMode::Static:
          for (size_t a = 0; a < enabled.size(); ++a)
          {
            weights[a] = enabled[a] ? spec_.actions[a].weight : 0.0;
          }
          break;
        case WeightingMode::QLearning:
        {
          if (rng_.chance(options_.q_epsilon))
          {
            for (size_t a = 0; a < enabled.size(); ++a)
            {
              weights[a] = enabled[a] ? 1.0 : 0.0;
            }
            break;
          }
          // Greedy: the enabled action with the highest learned value
          // (ties broken uniformly).
          double best = -1.0;
          for (size_t a = 0; a < enabled.size(); ++a)
          {
            if (enabled[a])
            {
              best = std::max(best, q_value(bucket, a));
            }
          }
          for (size_t a = 0; a < enabled.size(); ++a)
          {
            weights[a] =
              enabled[a] && q_value(bucket, a) >= best - 1e-12 ? 1.0 : 0.0;
          }
          break;
        }
      }
      double total = 0;
      for (const double w : weights)
      {
        total += w;
      }
      if (total <= 0)
      {
        return std::nullopt;
      }
      return rng_.weighted_pick(weights);
    }

    void note_state(
      const S& state,
      std::unordered_set<uint64_t>& distinct,
      SimResult<S>& result)
    {
      (void)result;
      if (options_.track_distinct)
      {
        // Canonical when symmetry is on, so distinct counts (and the
        // cross-worker union) measure coverage modulo the orbit.
        distinct.insert(expander_.fingerprint_of(state));
      }
      if (observer_)
      {
        observer_(state);
      }
    }

    static Counterexample<S> make_cex(
      const std::vector<TraceStep<S>>& walk, const std::string& property)
    {
      Counterexample<S> cex;
      cex.property = property;
      cex.steps = walk;
      return cex;
    }

    void finish(
      SimResult<S>& result,
      const Budget& budget,
      std::unordered_set<uint64_t>& distinct,
      uint64_t fresh)
    {
      result.stats.seconds = budget.elapsed();
      if (budget.caps().time_budget_seconds < 1e17)
      {
        result.stats.budget_seconds = budget.caps().time_budget_seconds;
      }
      result.stats.distinct_states =
        store_ != nullptr ? fresh : distinct.size();
      result.stats.canonicalized_states = expander_.canonicalized_count();
      result.stats.symmetry_hits = expander_.symmetry_hit_count();
      if (store_ != nullptr)
      {
        result.stats.store_bytes = store_->store_bytes();
        result.stats.spilled_bytes = store_->spilled_bytes();
        result.stats.rehash_count = store_->rehash_count();
      }
      result.stats.complete = false;
      result.distinct_fingerprints = std::move(distinct);
    }

    const SpecDef<S>& spec_;
    SimOptions options_;
    Rng rng_;
    Expander<S> expander_;
    std::function<void(const S&)> observer_;
    std::function<uint64_t(const S&)> q_features_;
    std::unordered_map<uint64_t, double> q_;
    const std::atomic<bool>* external_stop_ = nullptr;
    Store* store_ = nullptr;
    std::vector<S> seeds_;
  };

  /// Entry point: dispatches on SimOptions::threads.
  template <SpecState S>
  SimResult<S> simulate(const SpecDef<S>& spec, SimOptions options = {})
  {
    Simulator<S> sim(spec, options);
    return sim.run();
  }
}
