// Randomized simulation of a spec (§4).
//
// The paper found exhaustive model checking too slow for CI once the
// consensus spec modeled reconfiguration, and fell back to simulation: a
// time-quota'd random walk over behaviors up to a given depth. Coverage is
// improved by *action weighting* — failure actions (message drops,
// timeouts) are down-weighted so walks make more forward progress. The
// weight field on Action feeds the weighted pick here; a weight override
// map supports the manual-vs-uniform weighting experiment
// (bench/sim_weighting).
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "spec/budget.h"
#include "spec/spec.h"
#include "spec/stats.h"
#include "util/rng.h"

namespace scv::spec
{
  enum class WeightingMode
  {
    /// All enabled actions equally likely.
    Uniform,
    /// Static per-action weights from the spec (the paper's manual
    /// weighting of failure actions, §4).
    Static,
    /// Q-learning over (state features, action) pairs, rewarding novel
    /// states — the paper's attempt at automatic weighting ("we were
    /// unable to find the right set of variables as input to Q-Learning's
    /// state hash function H that achieved better coverage at the same
    /// cost compared to manual weighting").
    QLearning,
  };

  struct SimOptions
  {
    uint64_t seed = 1;
    uint64_t max_behaviors = UINT64_MAX;
    uint64_t max_depth = 50;
    double time_budget_seconds = 1.0;
    /// Worker threads. 1 = the single-threaded simulator; 0 = one worker
    /// per hardware thread; N>1 fans independent walks across N workers
    /// with seed = base seed + worker index (parallel_simulator.h).
    unsigned threads = 1;
    /// When false, all actions are treated as weight 1 (uniform pick).
    /// Kept for backwards compatibility: false forces Uniform mode.
    bool use_weights = true;
    WeightingMode mode = WeightingMode::Static;
    /// Track the set of distinct fingerprints visited (costs memory).
    bool track_distinct = true;

    // Q-learning hyperparameters.
    double q_alpha = 0.3; // learning rate
    double q_gamma = 0.7; // discount
    double q_epsilon = 0.1; // exploration probability

    /// The exploration-core budget: work counter = behaviors started, and
    /// max_depth bounds each walk rather than the whole run.
    [[nodiscard]] Budget::Caps budget_caps() const
    {
      return {time_budget_seconds, max_behaviors, max_depth};
    }
  };

  template <SpecState S>
  struct SimResult
  {
    bool ok = true;
    std::optional<Counterexample<S>> counterexample;
    ExplorationStats stats;
    uint64_t behaviors = 0;
    /// The visited fingerprint set (when track_distinct); the parallel
    /// simulator unions these across workers to measure joint coverage.
    std::unordered_set<uint64_t> distinct_fingerprints;
  };

  template <SpecState S>
  class Simulator
  {
  public:
    Simulator(const SpecDef<S>& spec, SimOptions options = {}) :
      spec_(spec),
      options_(options),
      rng_(options.seed)
    {}

    /// Optional per-state observer for domain-specific coverage metrics.
    void set_observer(std::function<void(const S&)> observer)
    {
      observer_ = std::move(observer);
    }

    /// Q-learning state-feature hash H: maps a state to the bucket whose
    /// action values are learned. Defaults to the full fingerprint; the
    /// paper's difficulty was exactly choosing a coarser H that
    /// generalizes (§4).
    void set_q_features(std::function<uint64_t(const S&)> features)
    {
      q_features_ = std::move(features);
    }

    /// Optional cooperative stop: when the flag becomes true the run winds
    /// down as if the time budget expired. Used by the parallel simulator
    /// to halt sibling workers once one of them finds a violation.
    void set_stop_flag(const std::atomic<bool>* stop)
    {
      external_stop_ = stop;
    }

    SimResult<S> run()
    {
      // Time (or the external stop flag) exhausts a behavior mid-walk; the
      // behavior cap only stops *starting* new walks.
      Budget budget(options_.budget_caps());
      budget.set_stop_flag(external_stop_);
      SimResult<S> result;
      std::unordered_set<uint64_t> distinct;

      while (!budget.exhausted(result.behaviors))
      {
        result.behaviors++;
        // Pick an initial state uniformly.
        S current = spec_.init[rng_.below(spec_.init.size())];
        note_state(current, distinct, result);

        std::vector<TraceStep<S>> walk;
        walk.push_back({"<init>", current});

        for (uint64_t depth = 0; !budget.depth_exceeded(depth); ++depth)
        {
          if (!spec_.within_constraint(current))
          {
            break;
          }
          // Expand every action; pick among enabled ones according to the
          // weighting mode, then a successor uniformly within the chosen
          // action.
          std::vector<std::vector<S>> successors(spec_.actions.size());
          std::vector<bool> enabled(spec_.actions.size(), false);
          bool any = false;
          for (size_t a = 0; a < spec_.actions.size(); ++a)
          {
            spec_.actions[a].expand(current, [&](const S& next) {
              successors[a].push_back(next);
            });
            result.stats.generated_states += successors[a].size();
            enabled[a] = !successors[a].empty();
            any = any || enabled[a];
          }
          if (!any)
          {
            break; // deadlock
          }
          const WeightingMode mode = !options_.use_weights ?
            WeightingMode::Uniform :
            options_.mode;
          const uint64_t bucket = q_bucket(current);
          const auto picked = pick_action(mode, enabled, bucket);
          if (!picked.has_value())
          {
            break; // all enabled actions have zero weight
          }
          const size_t a = *picked;
          const S next = successors[a][rng_.below(successors[a].size())];
          result.stats.transitions++;
          result.stats.action_coverage[spec_.actions[a].name]++;

          if (mode == WeightingMode::QLearning)
          {
            // Reward novelty; bootstrap from the best known value of the
            // successor bucket.
            const uint64_t next_fp = fingerprint(next);
            const double reward =
              options_.track_distinct && distinct.contains(next_fp) ? 0.0 :
                                                                      1.0;
            const uint64_t next_bucket =
              q_features_ ? q_features_(next) : next_fp;
            double best_next = 0.0;
            for (size_t a2 = 0; a2 < spec_.actions.size(); ++a2)
            {
              best_next = std::max(best_next, q_value(next_bucket, a2));
            }
            const double old = q_value(bucket, a);
            q_[q_key(bucket, a)] = old +
              options_.q_alpha *
                (reward + options_.q_gamma * best_next - old);
          }

          for (const auto& prop : spec_.action_properties)
          {
            if (!prop.check(current, next))
            {
              result.ok = false;
              result.counterexample = make_cex(walk, prop.name);
              result.counterexample->steps.push_back(
                {spec_.actions[a].name, next});
              finish(result, budget, distinct);
              return result;
            }
          }

          current = next;
          walk.push_back({spec_.actions[a].name, current});
          note_state(current, distinct, result);
          result.stats.max_depth =
            std::max<uint64_t>(result.stats.max_depth, depth + 1);

          for (const auto& inv : spec_.invariants)
          {
            if (!inv.check(current))
            {
              result.ok = false;
              result.counterexample = make_cex(walk, inv.name);
              finish(result, budget, distinct);
              return result;
            }
          }
          if (budget.time_exhausted())
          {
            break;
          }
        }
      }

      finish(result, budget, distinct);
      return result;
    }

  private:
    [[nodiscard]] uint64_t q_bucket(const S& state) const
    {
      return q_features_ ? q_features_(state) : fingerprint(state);
    }

    [[nodiscard]] static uint64_t q_key(uint64_t bucket, size_t action)
    {
      return hash_combine(bucket, static_cast<uint64_t>(action) + 1);
    }

    [[nodiscard]] double q_value(uint64_t bucket, size_t action) const
    {
      const auto it = q_.find(q_key(bucket, action));
      return it != q_.end() ? it->second : 0.0;
    }

    std::optional<size_t> pick_action(
      WeightingMode mode,
      const std::vector<bool>& enabled,
      uint64_t bucket)
    {
      std::vector<double> weights(enabled.size(), 0.0);
      switch (mode)
      {
        case WeightingMode::Uniform:
          for (size_t a = 0; a < enabled.size(); ++a)
          {
            weights[a] = enabled[a] ? 1.0 : 0.0;
          }
          break;
        case WeightingMode::Static:
          for (size_t a = 0; a < enabled.size(); ++a)
          {
            weights[a] = enabled[a] ? spec_.actions[a].weight : 0.0;
          }
          break;
        case WeightingMode::QLearning:
        {
          if (rng_.chance(options_.q_epsilon))
          {
            for (size_t a = 0; a < enabled.size(); ++a)
            {
              weights[a] = enabled[a] ? 1.0 : 0.0;
            }
            break;
          }
          // Greedy: the enabled action with the highest learned value
          // (ties broken uniformly).
          double best = -1.0;
          for (size_t a = 0; a < enabled.size(); ++a)
          {
            if (enabled[a])
            {
              best = std::max(best, q_value(bucket, a));
            }
          }
          for (size_t a = 0; a < enabled.size(); ++a)
          {
            weights[a] =
              enabled[a] && q_value(bucket, a) >= best - 1e-12 ? 1.0 : 0.0;
          }
          break;
        }
      }
      double total = 0;
      for (const double w : weights)
      {
        total += w;
      }
      if (total <= 0)
      {
        return std::nullopt;
      }
      return rng_.weighted_pick(weights);
    }

    void note_state(
      const S& state,
      std::unordered_set<uint64_t>& distinct,
      SimResult<S>& result)
    {
      (void)result;
      if (options_.track_distinct)
      {
        distinct.insert(fingerprint(state));
      }
      if (observer_)
      {
        observer_(state);
      }
    }

    static Counterexample<S> make_cex(
      const std::vector<TraceStep<S>>& walk, const std::string& property)
    {
      Counterexample<S> cex;
      cex.property = property;
      cex.steps = walk;
      return cex;
    }

    void finish(
      SimResult<S>& result,
      const Budget& budget,
      std::unordered_set<uint64_t>& distinct)
    {
      result.stats.seconds = budget.elapsed();
      result.stats.distinct_states = distinct.size();
      result.stats.complete = false;
      result.distinct_fingerprints = std::move(distinct);
    }

    const SpecDef<S>& spec_;
    SimOptions options_;
    Rng rng_;
    std::function<void(const S&)> observer_;
    std::function<uint64_t(const S&)> q_features_;
    std::unordered_map<uint64_t, double> q_;
    const std::atomic<bool>* external_stop_ = nullptr;
  };
}

// The multi-worker engine and the simulate() entry point (which dispatches
// on SimOptions::threads) live in the companion header.
#include "spec/parallel_simulator.h"
