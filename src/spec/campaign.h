// Verification campaigns: all three engines, one store, one clock (§4–§6).
//
// The paper runs its verification as a portfolio — exhaustive model
// checking where feasible, randomized simulation where not, and trace
// validation against implementation runs — and reports coverage per
// technique (Table 1). A Campaign packages that portfolio behind one
// session API:
//
//   * One ShardedStateStore shared by every engine. Each admission is
//     tagged with the discovering engine (EngineId), so the campaign can
//     report per-engine first-discovery counts next to the unioned total;
//     a state two engines both visit is counted once, for whichever got
//     there first. Union == store size == sum of per-engine contributions.
//   * Cross-engine seeding. A checker cut short by its budget exports its
//     unexpanded BFS frontier; the simulator starts its walks there
//     instead of at the initial states — random deepening exactly where
//     exhaustive search stopped. Conversely, a simulation run before the
//     checker leaves its discoveries in the store, and the checker's
//     frontier-batched BFS seeds from them.
//   * A TimeBox scheduler. One wall-clock budget is split across the
//     phases by weight, rebalanced at each phase start: an early phase
//     that exhausts its state space under its allotment automatically
//     donates the leftover to the phases behind it (the allotment is
//     computed from *remaining* wall clock, not the original box). The
//     per-phase allotment is visible as ExplorationStats::budget_seconds.
//
// Phase order is exhaustive-first: BFS while it is cheap, then weighted
// simulation spending whatever the checker left, then trace validation,
// then — when registered via set_nemesis_phase() — a driver-level
// fault-injection (nemesis) phase sharing the same box, so one wall-clock
// budget spans checker -> simulator -> validator -> nemesis. Phases can
// also be run individually (run_checker() / run_simulator() /
// run_validator() / run_nemesis()) for campaigns that interleave their
// own work; run() restarts the box clock, individual calls do not.
#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "spec/budget.h"
#include "spec/engine.h"
#include "spec/model_checker.h"
#include "spec/sharded_state_store.h"
#include "spec/simulator.h"
#include "spec/spec.h"
#include "spec/stats.h"
#include "spec/trace_validator.h"
#include "spec/worker_pool.h"
#include "util/json.h"

namespace scv::spec
{
  /// Splits one wall-clock budget across a fixed sequence of phases by
  /// weight, with adaptive rebalancing: each phase's allotment is
  ///
  ///   remaining_wall_clock * w_i / (w_i + w_{i+1} + ... + w_n)
  ///
  /// computed when the phase *starts*. A phase that finishes early leaves
  /// more remaining clock, so later phases' allotments grow — leftover
  /// budget flows forward without explicit bookkeeping.
  class TimeBox
  {
  public:
    TimeBox(double total_seconds, std::vector<double> weights) :
      budget_(Budget::Caps{total_seconds, UINT64_MAX, UINT64_MAX}),
      weights_(std::move(weights))
    {}

    /// Restarts the box clock and rewinds to the first phase.
    void restart()
    {
      budget_.restart();
      next_ = 0;
    }

    /// Starts the next phase; returns its wall-clock allotment in seconds.
    /// Phases past the configured weights get everything that remains.
    [[nodiscard]] double begin_phase()
    {
      double tail = 0.0;
      for (size_t i = next_; i < weights_.size(); ++i)
      {
        tail += weights_[i];
      }
      const double w = next_ < weights_.size() ? weights_[next_] : 1.0;
      next_++;
      const double remaining = budget_.remaining_seconds();
      return tail > 0.0 ? remaining * (w / tail) : remaining;
    }

    [[nodiscard]] const Budget& budget() const
    {
      return budget_;
    }

  private:
    Budget budget_;
    std::vector<double> weights_;
    size_t next_ = 0;
  };

  /// One phase of a campaign, reduced to what Table-1-style output needs.
  struct PhaseReport
  {
    EngineId engine = EngineId::None;
    /// False when the phase was skipped (e.g. a validator phase with no
    /// traces registered).
    bool ran = false;
    bool ok = true;
    /// The TimeBox allotment the phase started with. Compare against the
    /// phase's naive share of the box to see leftover reassignment.
    double allotted_seconds = 0.0;
    /// States this engine admitted to the shared store first — its
    /// contribution to the union (store origin_count delta).
    uint64_t store_new = 0;
    ExplorationStats stats;
  };

  /// Campaign outcome: per-phase reports plus the unioned coverage. The
  /// union is the shared store's size, so union <= sum of the engines'
  /// standalone distinct counts (shared states counted once) and
  /// union >= every single engine's contribution.
  struct CampaignReport
  {
    std::vector<PhaseReport> phases;
    /// Distinct states across all engines (the shared store's size).
    uint64_t union_distinct = 0;
    /// Wall clock actually consumed.
    double total_seconds = 0.0;
    /// The configured box.
    double box_seconds = 0.0;

    [[nodiscard]] const PhaseReport* phase(EngineId engine) const
    {
      for (const PhaseReport& p : phases)
      {
        if (p.engine == engine)
        {
          return &p;
        }
      }
      return nullptr;
    }

    /// Per-engine + union coverage table (Table-1-style, human-readable).
    [[nodiscard]] std::string summary() const;
    /// The same as a JSON object (bench output, CI assertions).
    [[nodiscard]] std::string to_json() const;
    /// The same as a structured value, for embedding in larger JSON
    /// documents (e.g. bench_util BenchReport fields).
    [[nodiscard]] json::Value to_json_value() const;
  };

  template <SpecState S>
  class Campaign
  {
  public:
    struct Options
    {
      Options()
      {
        // The box governs phase deadlines; engine-local time budgets act
        // as additional caps only if explicitly tightened.
        sim.time_budget_seconds = 1e18;
      }

      /// The whole campaign's wall-clock box, split by the weights below.
      double total_seconds = 10.0;
      /// Phase weights (need not sum to 1); exhaustive-first default.
      double check_weight = 0.5;
      double sim_weight = 0.3;
      double validate_weight = 0.2;
      /// Weight of the optional nemesis phase (set_nemesis_phase). The
      /// default 0 leaves the first three allotments untouched; a
      /// registered nemesis phase then runs on whatever the earlier
      /// phases left of the box.
      double nemesis_weight = 0.0;
      /// The shared store's storage mode, byte ceiling and spill
      /// directory (docs/SPEC.md "Store modes"). Fingerprint-only
      /// campaigns drop state bodies once states leave each engine's
      /// frontier, so cross-engine seeding only draws from body-live
      /// records and counterexamples on cross-engine chains may be
      /// partial (verdicts are unaffected).
      StoreOptions store;
      /// Engine knobs. time_budget_seconds in each is combined with the
      /// phase allotment by min(), so it only matters when tighter.
      /// (Each engine's own StoreOptions apply to its private stores —
      /// e.g. the validator's search store — not to the shared one.)
      CheckLimits check;
      SimOptions sim;
      ValidationOptions validate;
    };

    /// A registered trace for the validation phase.
    struct TraceCase
    {
      std::string name;
      std::vector<S> init;
      std::vector<TraceLineExpander<S>> lines;
      std::function<void(const S&, const Emit<S>&)> fault;
    };

    /// A pluggable fourth phase: driver-level fault-injection fuzzing
    /// (or anything else) run under the campaign's shared TimeBox. The
    /// callback gets a child Budget carved from the box and returns
    /// checker-style results (ok == nothing found wrong).
    using NemesisPhase = std::function<EngineReport(const Budget& budget)>;

    explicit Campaign(const SpecDef<S>& spec, Options options = {}) :
      spec_(spec),
      options_(options),
      store_(shards_for(options), store_options_for(options)),
      box_(
        options.total_seconds,
        {options.check_weight,
         options.sim_weight,
         options.validate_weight,
         options.nemesis_weight})
    {}

    /// Registers a trace for the validation phase (validated in
    /// registration order; the phase allotment is split across them).
    void add_trace(
      std::string name,
      std::vector<S> init,
      std::vector<TraceLineExpander<S>> lines,
      std::function<void(const S&, const Emit<S>&)> fault = nullptr)
    {
      traces_.push_back(
        {std::move(name), std::move(init), std::move(lines), std::move(fault)});
    }

    /// Registers the optional nemesis phase; run() then spans
    /// checker -> simulator -> validator -> nemesis under one box.
    void set_nemesis_phase(NemesisPhase phase)
    {
      nemesis_ = std::move(phase);
    }

    /// The whole portfolio: checker, then simulator (seeded from the
    /// checker's leftover frontier), then every registered trace, then —
    /// when one is registered — the nemesis phase. Restarts the box
    /// clock; returns the final report.
    CampaignReport run()
    {
      box_.restart();
      report_ = {};
      (void)run_checker();
      (void)run_simulator();
      (void)run_validator();
      if (nemesis_)
      {
        (void)run_nemesis();
      }
      return report();
    }

    /// Phase 1: exhaustive BFS over the shared store. An incomplete run
    /// (budget cut) leaves its unexpanded frontier for the simulator.
    CheckResult<S> run_checker()
    {
      const double allot = box_.begin_phase();
      CheckLimits limits = options_.check;
      limits.time_budget_seconds =
        std::min(limits.time_budget_seconds, allot);
      ModelChecker<S> checker(spec_, limits);
      checker.attach_store(&store_, EngineId::Checker);
      const uint64_t before = contribution(EngineId::Checker);
      CheckResult<S> result = checker.check();
      frontier_ = checker.take_frontier();
      record_phase(
        EngineId::Checker,
        result.ok,
        allot,
        contribution(EngineId::Checker) - before,
        result.stats);
      return result;
    }

    /// Phase 2: weighted simulation over the shared store, spending
    /// whatever the checker left of the box. Walks start from the
    /// checker's leftover frontier when there is one — random deepening
    /// where exhaustive search stopped.
    SimResult<S> run_simulator()
    {
      const double allot = box_.begin_phase();
      SimOptions opts = options_.sim;
      opts.time_budget_seconds = std::min(opts.time_budget_seconds, allot);
      Simulator<S> sim(spec_, opts);
      sim.attach_store(&store_, EngineId::Simulator);
      if (!frontier_.empty())
      {
        sim.set_walk_seeds(frontier_);
      }
      const uint64_t before = contribution(EngineId::Simulator);
      SimResult<S> result = sim.run();
      record_phase(
        EngineId::Simulator,
        result.ok,
        allot,
        contribution(EngineId::Simulator) - before,
        result.stats);
      return result;
    }

    /// Phase 3: every registered trace, the phase allotment split evenly
    /// across the traces still to run (an early finisher's leftover flows
    /// to the rest). Candidate states feed the shared store as coverage.
    std::vector<ValidationResult<S>> run_validator()
    {
      const double allot = box_.begin_phase();
      std::vector<ValidationResult<S>> results;
      if (traces_.empty())
      {
        PhaseReport skipped;
        skipped.engine = EngineId::Validator;
        skipped.ran = false;
        skipped.allotted_seconds = allot;
        report_.phases.push_back(skipped);
        return results;
      }

      const Budget phase(Budget::Caps{allot, UINT64_MAX, UINT64_MAX});
      const uint64_t before = contribution(EngineId::Validator);
      ExplorationStats merged;
      uint64_t distinct = 0;
      bool all_ok = true;
      bool all_complete = true;
      for (size_t i = 0; i < traces_.size(); ++i)
      {
        ValidationOptions opts = options_.validate;
        const double share =
          phase.remaining_seconds() / static_cast<double>(traces_.size() - i);
        opts.time_budget_seconds =
          std::min(opts.time_budget_seconds, share);
        TraceCase& trace = traces_[i];
        TraceValidator<S> validator(trace.init, trace.lines, opts);
        if (trace.fault)
        {
          validator.set_fault_expander(trace.fault);
        }
        validator.set_coverage_store(&store_, EngineId::Validator);
        results.push_back(validator.run());
        const ValidationResult<S>& r = results.back();
        all_ok = all_ok && r.ok;
        all_complete = all_complete && r.stats.complete;
        distinct += r.stats.distinct_states;
        merged.absorb_counts(r.stats);
        merged.seconds += r.stats.seconds;
        merged.budget_seconds += r.stats.budget_seconds;
      }
      merged.distinct_states = distinct;
      merged.complete = all_complete;
      record_phase(
        EngineId::Validator,
        all_ok,
        allot,
        contribution(EngineId::Validator) - before,
        merged);
      return results;
    }

    /// Phase 4 (optional): driver-level fault injection under the same
    /// box. The callback's Budget is a child of the box budget, so the
    /// campaign's cooperative stop and remaining wall clock bound it; the
    /// phase contributes no spec states to the shared store.
    EngineReport run_nemesis()
    {
      const double allot = box_.begin_phase();
      EngineReport result;
      result.engine = EngineId::Nemesis;
      if (!nemesis_)
      {
        PhaseReport skipped;
        skipped.engine = EngineId::Nemesis;
        skipped.ran = false;
        skipped.allotted_seconds = allot;
        report_.phases.push_back(skipped);
        return result;
      }
      const Budget phase = box_.budget().child(allot);
      result = nemesis_(phase);
      result.engine = EngineId::Nemesis;
      record_phase(EngineId::Nemesis, result.ok, allot, 0, result.stats);
      return result;
    }

    /// Snapshot of the campaign so far (phases run, union coverage,
    /// elapsed clock). run() returns the same thing after all phases.
    [[nodiscard]] CampaignReport report() const
    {
      CampaignReport out = report_;
      out.union_distinct = store_.size();
      out.total_seconds = box_.budget().elapsed();
      out.box_seconds = options_.total_seconds;
      return out;
    }

    /// The shared store (quiescent access between phases only).
    [[nodiscard]] const ShardedStateStore<S>& store() const
    {
      return store_;
    }

    /// States `engine` admitted to the shared store first.
    [[nodiscard]] uint64_t contribution(EngineId engine) const
    {
      return store_.origin_count(static_cast<uint8_t>(engine));
    }

    /// The checker's leftover frontier (empty after a complete check).
    [[nodiscard]] const std::vector<S>& frontier() const
    {
      return frontier_;
    }

  private:
    /// The shared store must dedup by fingerprint alone when any spec
    /// engine canonicalizes (orbit siblings share a canonical fingerprint
    /// but differ under operator== — store_options.h). The validator's
    /// coverage tap stays concrete-keyed; mixing concrete and canonical
    /// keys in one store is fine because dedup is per-key.
    static StoreOptions store_options_for(const Options& options)
    {
      StoreOptions opts = options.store;
      if (options.check.symmetry || options.sim.symmetry)
      {
        opts.dedup_by_fingerprint = true;
      }
      return opts;
    }

    static size_t shards_for(const Options& options)
    {
      const unsigned workers = std::max(
        {resolve_worker_count(options.check.threads),
         resolve_worker_count(options.sim.threads),
         resolve_worker_count(options.validate.threads)});
      return workers == 1 ? 1 : 4 * static_cast<size_t>(workers);
    }

    void record_phase(
      EngineId engine,
      bool ok,
      double allotted,
      uint64_t store_new,
      const ExplorationStats& stats)
    {
      PhaseReport phase;
      phase.engine = engine;
      phase.ran = true;
      phase.ok = ok;
      phase.allotted_seconds = allotted;
      phase.store_new = store_new;
      phase.stats = stats;
      report_.phases.push_back(std::move(phase));
      // Phase boundary: every engine has joined its workers, so the
      // shared store is quiescent — frozen arena blocks may spill.
      store_.maybe_spill();
    }

    const SpecDef<S>& spec_;
    Options options_;
    ShardedStateStore<S> store_;
    TimeBox box_;
    std::vector<TraceCase> traces_;
    std::vector<S> frontier_;
    NemesisPhase nemesis_;
    CampaignReport report_;
  };
}
