// Specification framework: guarded-action transition systems.
//
// This is the C++ analogue of the paper's TLA+ layer (§3). A specification
// is Init ∧ □[Next]_vars where Next is a disjunction of named actions; here
// a SpecDef<S> holds initial states and a list of Actions, each of which
// enumerates the successors it can produce from a given state. Safety
// invariants are predicates over states; action properties (like
// AppendOnlyProp) are predicates over state *pairs*.
//
// State type requirements:
//   * bool operator==(const S&) const
//   * void serialize(ByteSink&) const   — canonical; equal states produce
//                                         equal bytes (used to fingerprint)
//   * std::string to_string() const     — for counterexample printing
#pragma once

#include <concepts>
#include <functional>
#include <string>
#include <vector>

#include "util/hash.h"

namespace scv::spec
{
  template <class S>
  concept SpecState = requires(const S& s, ByteSink& sink) {
    { s == s } -> std::convertible_to<bool>;
    { s.serialize(sink) };
    { s.to_string() } -> std::convertible_to<std::string>;
  };

  template <SpecState S>
  uint64_t fingerprint(const S& state)
  {
    ByteSink sink;
    state.serialize(sink);
    return sink.digest();
  }

  /// Callback receiving each successor produced by an action.
  template <class S>
  using Emit = std::function<void(const S&)>;

  /// A named guarded action: from a state, emits zero or more successors.
  /// Emitting nothing means the action is disabled in that state.
  template <SpecState S>
  struct Action
  {
    std::string name;
    std::function<void(const S&, const Emit<S>&)> expand;
    /// Relative likelihood of being picked during simulation; the paper
    /// manually down-weights failure actions to bias simulation toward
    /// forward progress (§4).
    double weight = 1.0;
  };

  template <SpecState S>
  struct Invariant
  {
    std::string name;
    std::function<bool(const S&)> check;
  };

  /// Property over a transition (s, s'); e.g. AppendOnlyProp.
  template <SpecState S>
  struct ActionProperty
  {
    std::string name;
    std::function<bool(const S&, const S&)> check;
  };

  template <SpecState S>
  struct SpecDef
  {
    std::string name;
    std::vector<S> init;
    std::vector<Action<S>> actions;
    std::vector<Invariant<S>> invariants;
    std::vector<ActionProperty<S>> action_properties;
    /// State constraint (§4): successors of states violating it are not
    /// explored. Used to bound the unbounded spec for exhaustive checking.
    std::function<bool(const S&)> constraint;

    [[nodiscard]] bool within_constraint(const S& s) const
    {
      return !constraint || constraint(s);
    }
  };

  /// One step of a counterexample: the action taken and the state reached.
  template <SpecState S>
  struct TraceStep
  {
    std::string action;
    S state;
  };

  template <SpecState S>
  struct Counterexample
  {
    /// Violated invariant or action property.
    std::string property;
    /// steps[0].action is "<init>".
    std::vector<TraceStep<S>> steps;

    [[nodiscard]] std::string to_string() const
    {
      std::string out = "violation of " + property + "\n";
      for (size_t i = 0; i < steps.size(); ++i)
      {
        out += "  [" + std::to_string(i) + "] " + steps[i].action + "\n";
        out += "      " + steps[i].state.to_string() + "\n";
      }
      return out;
    }
  };
}
