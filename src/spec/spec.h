// Specification framework: guarded-action transition systems.
//
// This is the C++ analogue of the paper's TLA+ layer (§3). A specification
// is Init ∧ □[Next]_vars where Next is a disjunction of named actions; here
// a SpecDef<S> holds initial states and a list of Actions, each of which
// enumerates the successors it can produce from a given state. Safety
// invariants are predicates over states; action properties (like
// AppendOnlyProp) are predicates over state *pairs*.
//
// State type requirements:
//   * bool operator==(const S&) const
//   * void serialize(ByteSink&) const   — canonical; equal states produce
//                                         equal bytes (used to fingerprint)
//   * std::string to_string() const     — for counterexample printing
#pragma once

#include <concepts>
#include <functional>
#include <string>
#include <vector>

#include "util/hash.h"

namespace scv::spec
{
  template <class S>
  concept SpecState = requires(const S& s, ByteSink& sink) {
    { s == s } -> std::convertible_to<bool>;
    { s.serialize(sink) };
    { s.to_string() } -> std::convertible_to<std::string>;
  };

  template <SpecState S>
  uint64_t fingerprint(const S& state)
  {
    // Reused per thread: clear() keeps the vector's capacity, so
    // steady-state fingerprinting allocates nothing. serialize() must not
    // fingerprint other states re-entrantly (none do — they only append
    // bytes).
    thread_local ByteSink sink;
    sink.clear();
    state.serialize(sink);
    return sink.digest();
  }

  /// A permutation of identity indices 0..k-1: perm[i] is the new index
  /// of identity i.
  using Perm = std::vector<uint8_t>;

  /// Symmetry hook (TLC symmetry sets): a permutation group over the
  /// spec's interchangeable identities (node ids, transaction ids) under
  /// which the transition relation, the invariants, the action properties
  /// and the state constraint are all equivariant. Initial states need
  /// NOT be symmetric. When a SpecDef carries one and an engine enables
  /// EngineOptions::symmetry, the Expander fingerprints the canonical
  /// orbit representative (symmetry.h), so orbit-equivalent states dedup
  /// to one — up to |G| (= k! for the full group) fewer distinct states.
  template <SpecState S>
  struct Symmetry
  {
    /// Number of permutable identities in this state (may vary per state,
    /// e.g. "transaction ids assigned so far").
    std::function<size_t(const S&)> domain;
    /// Applies a permutation: every occurrence of identity i in the state
    /// is relabeled to perm[i], and any identity-indexed containers are
    /// re-normalized (sorted multisets re-sorted, arrays re-permuted).
    std::function<S(const S&, const Perm&)> apply;
    /// Optional label-invariant per-identity signature enabling the
    /// sorted fast path: sig(apply(s, p), p[i]) == sig(s, i) must hold
    /// for every permutation in the group. A weak signature only costs
    /// speed (ties fall back to enumeration), never correctness.
    std::function<uint64_t(const S&, size_t)> signature;
    /// Explicit group elements (each of size >= any state's domain;
    /// identities beyond a state's domain must be fixed points). Empty
    /// means the full symmetric group on the state's domain, which is
    /// what enables the sorted-by-signature fast path.
    std::vector<Perm> group;

    [[nodiscard]] bool enabled() const
    {
      return static_cast<bool>(apply);
    }
  };

  /// Callback receiving each successor produced by an action.
  template <class S>
  using Emit = std::function<void(const S&)>;

  /// A named guarded action: from a state, emits zero or more successors.
  /// Emitting nothing means the action is disabled in that state.
  template <SpecState S>
  struct Action
  {
    std::string name;
    std::function<void(const S&, const Emit<S>&)> expand;
    /// Relative likelihood of being picked during simulation; the paper
    /// manually down-weights failure actions to bias simulation toward
    /// forward progress (§4).
    double weight = 1.0;
  };

  template <SpecState S>
  struct Invariant
  {
    std::string name;
    std::function<bool(const S&)> check;
  };

  /// Property over a transition (s, s'); e.g. AppendOnlyProp.
  template <SpecState S>
  struct ActionProperty
  {
    std::string name;
    std::function<bool(const S&, const S&)> check;
  };

  template <SpecState S>
  struct SpecDef
  {
    std::string name;
    std::vector<S> init;
    std::vector<Action<S>> actions;
    std::vector<Invariant<S>> invariants;
    std::vector<ActionProperty<S>> action_properties;
    /// State constraint (§4): successors of states violating it are not
    /// explored. Used to bound the unbounded spec for exhaustive checking.
    std::function<bool(const S&)> constraint;
    /// Optional symmetry group (docs/SPEC.md "Symmetry reduction").
    /// Inert unless an engine turns on EngineOptions::symmetry.
    Symmetry<S> symmetry;

    [[nodiscard]] bool within_constraint(const S& s) const
    {
      return !constraint || constraint(s);
    }

    [[nodiscard]] bool has_symmetry() const
    {
      return symmetry.enabled();
    }
  };

  /// One step of a counterexample: the action taken and the state reached.
  template <SpecState S>
  struct TraceStep
  {
    std::string action;
    S state;
  };

  template <SpecState S>
  struct Counterexample
  {
    /// Violated invariant or action property.
    std::string property;
    /// steps[0].action is "<init>".
    std::vector<TraceStep<S>> steps;

    [[nodiscard]] std::string to_string() const
    {
      std::string out = "violation of " + property + "\n";
      for (size_t i = 0; i < steps.size(); ++i)
      {
        out += "  [" + std::to_string(i) + "] " + steps[i].action + "\n";
        out += "      " + steps[i].state.to_string() + "\n";
      }
      return out;
    }
  };
}
