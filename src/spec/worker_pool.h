// Fork-join worker pool shared by the parallel engines.
//
// The parallel model checker (per exploration level), the parallel
// simulator (one seeded walk stream per worker) and the parallel trace
// validator (per trace line) all need the same primitive: run fn(w) for
// w in [0, size()) and wait for everyone. This type owns that pattern —
// including the two conventions every engine must agree on:
//   * requested == 0 means one worker per hardware thread;
//   * size() == 1 runs fn inline on the calling thread, so a single-worker
//     "pool" is exactly the sequential engine (no thread is spawned, no
//     memory ordering is in play, results are bit-identical).
#pragma once

#include <thread>
#include <vector>

namespace scv::spec
{
  /// 0 -> one worker per hardware thread (at least one).
  inline unsigned resolve_worker_count(unsigned requested)
  {
    if (requested != 0)
    {
      return requested;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  class WorkerPool
  {
  public:
    explicit WorkerPool(unsigned requested) :
      threads_(resolve_worker_count(requested))
    {}

    [[nodiscard]] unsigned size() const
    {
      return threads_;
    }

    /// Runs fn(w) for every worker index and joins before returning. The
    /// barrier is the point: after run() the caller may touch shared state
    /// (stores, local result slices) without synchronization.
    template <class F>
    void run(F&& fn) const
    {
      if (threads_ == 1)
      {
        fn(0u);
        return;
      }
      std::vector<std::thread> pool;
      pool.reserve(threads_);
      for (unsigned w = 0; w < threads_; ++w)
      {
        pool.emplace_back(fn, w);
      }
      for (auto& t : pool)
      {
        t.join();
      }
    }

  private:
    unsigned threads_;
  };
}
