// Explicit-state model checking (the TLC analogue, §3/§4).
//
// Breadth-first exhaustive exploration of a SpecDef's reachable state
// space, checking every invariant on every distinct state and every action
// property on every transition. Counterexamples are reconstructed by
// walking the predecessor graph, so a violation comes with the shortest
// action sequence that reaches it — the same workflow the paper describes
// for translating spec counterexamples into functional tests (§7).
//
// One engine, one entry point: ModelChecker::check() (and the free
// function model_check()) dispatch on CheckLimits::threads, exactly as
// TraceValidator does:
//   * threads = 1 runs the strictly sequential FIFO BFS — the reference
//     semantics: deterministic traversal order, shortest counterexamples,
//     bit-identical results run to run.
//   * threads != 1 runs frontier-batched BFS over a WorkerPool and a
//     sharded fingerprint store — TLC's multi-worker exploration model.
//     All states at depth d form one work vector, workers claim items
//     with an atomic cursor, expand actions, and collect the next
//     frontier in per-worker vectors concatenated at the level barrier.
//     First violation wins (a stop flag drains the other workers) and,
//     because levels are processed in order, the reported trace is
//     *level-minimal*: no strictly shorter counterexample exists.
//
// Campaign mode (campaign.h): attach_store() points the checker at a
// shared ShardedStateStore instead of its private one. States already in
// the store (another engine's discoveries) seed the BFS frontier, every
// admission is tagged with the checker's EngineId, and the unexpanded
// frontier of a budget-cut run is exported for the next engine to seed
// from (take_frontier()).
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "spec/budget.h"
#include "spec/engine.h"
#include "spec/expander.h"
#include "spec/sharded_state_store.h"
#include "spec/spec.h"
#include "spec/stats.h"
#include "spec/worker_pool.h"

namespace scv::spec
{
  struct CheckLimits : EngineOptions
  {
    /// Work-counter cap: distinct states admitted to the store.
    uint64_t max_distinct_states = UINT64_MAX;
    uint64_t max_depth = UINT64_MAX;

    /// The exploration-core budget: work counter = distinct states.
    [[nodiscard]] Budget::Caps budget_caps() const
    {
      return make_caps(max_distinct_states, max_depth);
    }
  };

  template <SpecState S>
  struct CheckResult : EngineReport
  {
    CheckResult()
    {
      engine = EngineId::Checker;
    }

    std::optional<Counterexample<S>> counterexample;
  };

  /// Rebuilds the path from an initial state to `id` as a counterexample.
  /// Full-mode stores read the predecessor chain's bodies directly (the
  /// historical behavior, bit-identical); fingerprint-only stores replay
  /// the recorded action chain from spec.init through the spec's actions
  /// (ShardedStateStore::reconstruct_path). When the replay cannot
  /// reproduce the chain — e.g. a campaign chain rooted at another
  /// engine's seed rather than an initial state — the counterexample
  /// falls back to the deepest suffix whose bodies are still live (at
  /// minimum the violating state itself, which never left the frontier).
  /// Callers must ensure no concurrent inserts (see ShardedStateStore's
  /// contract).
  template <SpecState S>
  Counterexample<S> reconstruct_counterexample(
    const ShardedStateStore<S>& store,
    const SpecDef<S>& spec,
    typename ShardedStateStore<S>::Id id,
    const std::string& property)
  {
    using Store = ShardedStateStore<S>;
    Counterexample<S> cex;
    cex.property = property;

    std::vector<uint32_t> actions; // root first; actions[0] == init_action
    for (auto cur = id;;)
    {
      const auto r = store.record(cur);
      actions.push_back(r.action);
      if (r.parent == Store::no_parent)
      {
        break;
      }
      cur = r.parent;
    }
    std::reverse(actions.begin(), actions.end());

    const auto path = store.reconstruct_path(
      id,
      spec.init,
      [&](const S& s, uint32_t action, uint32_t, const Emit<S>& emit) {
        spec.actions[action].expand(s, emit);
      });
    if (path.has_value() && path->size() == actions.size())
    {
      for (size_t i = 0; i < actions.size(); ++i)
      {
        cex.steps.push_back(
          {actions[i] == Store::init_action ? "<init>" :
                                              spec.actions[actions[i]].name,
           (*path)[i]});
      }
      return cex;
    }

    // Fallback: the live-body suffix of the chain.
    std::vector<TraceStep<S>> reversed;
    for (auto cur = id;;)
    {
      const auto r = store.record(cur);
      if (r.body == nullptr)
      {
        break;
      }
      reversed.push_back(
        {r.action == Store::init_action ? "<init>" :
                                          spec.actions[r.action].name,
         *r.body});
      if (r.parent == Store::no_parent)
      {
        break;
      }
      cur = r.parent;
    }
    cex.steps.assign(reversed.rbegin(), reversed.rend());
    return cex;
  }

  template <SpecState S>
  class ModelChecker
  {
  public:
    explicit ModelChecker(const SpecDef<S>& spec, CheckLimits limits = {}) :
      spec_(spec),
      limits_(limits),
      expander_(&spec_)
    {
      expander_.enable_symmetry(limits_.symmetry);
    }

    /// Campaign mode: run over `store` (shared with other engines, never
    /// cleared) instead of a private store. Existing records seed the BFS
    /// frontier; admissions are tagged `origin`. The store must outlive
    /// the checker, and no other engine may touch it during check().
    void attach_store(
      ShardedStateStore<S>* store, EngineId origin = EngineId::Checker)
    {
      external_ = store;
      expander_.set_origin(static_cast<uint8_t>(origin));
    }

    /// Unified entry point: dispatches on CheckLimits::threads (see
    /// docs/SPEC.md "threads semantics"). A checker attached to a shared
    /// store always runs the frontier-batched path, whose single-worker
    /// schedule is the same global FIFO order as the sequential engine.
    CheckResult<S> check()
    {
      frontier_out_.clear();
      if (external_ == nullptr && resolve_worker_count(limits_.threads) == 1)
      {
        return check_sequential();
      }
      return check_parallel();
    }

    /// Legacy name for check().
    CheckResult<S> run()
    {
      return check();
    }

    /// After an incomplete check(): the unexpanded BFS frontier — states
    /// admitted but never expanded before the budget cut the run. A
    /// campaign seeds the simulator's walk starts from these.
    [[nodiscard]] std::vector<S> take_frontier()
    {
      return std::move(frontier_out_);
    }

  private:
    using Store = ShardedStateStore<S>;
    using Id = typename Store::Id;

    [[nodiscard]] Store& store()
    {
      return external_ != nullptr ? *external_ : *owned_;
    }

    /// Store options for the private store. With symmetry on, orbit
    /// siblings share a canonical fingerprint but differ under
    /// operator==, so full mode must dedup by fingerprint alone or the
    /// collision fallback re-admits every sibling (store_options.h).
    [[nodiscard]] StoreOptions store_options() const
    {
      StoreOptions opts = limits_.store;
      if (expander_.symmetry_enabled())
      {
        opts.dedup_by_fingerprint = true;
      }
      return opts;
    }

    // ---- threads == 1, private store: the sequential reference engine --

    /// The store's byte ceiling, treated like an exhausted work budget.
    [[nodiscard]] bool over_memory_budget()
    {
      return limits_.store.memory_budget_bytes > 0 &&
        store().store_bytes() > limits_.store.memory_budget_bytes;
    }

    CheckResult<S> check_sequential()
    {
      owned_ = std::make_unique<Store>(1, store_options());
      Budget budget(limits_.budget_caps());
      CheckResult<S> result;

      for (const S& init : spec_.init)
      {
        const auto ins = expander_.admit(
          store(), init, Store::no_parent, Store::init_action, 0);
        if (ins.inserted)
        {
          result.stats.generated_states++;
          if (!check_state(init, ins.id, result))
          {
            finish(result, budget, false);
            return result;
          }
        }
        else
        {
          result.stats.duplicate_states++;
        }
      }

      // With a single shard, IDs are dense 0..size-1 in insertion order, so
      // a cursor over IDs is the classic FIFO BFS queue.
      size_t cursor = 0;
      while (cursor < store().size())
      {
        if (budget.exhausted(store().size()) || over_memory_budget())
        {
          export_sequential_frontier(cursor);
          finish(result, budget, false);
          return result;
        }
        if ((cursor & 0xFFFF) == 0)
        {
          // Block-granularity housekeeping; no-op without a spill_dir.
          store().maybe_spill();
        }

        const auto current = static_cast<Id>(cursor++);
        // Stable arenas: references stay valid across inserts (full-mode
        // bodies live in a deque, frontier bodies in a node-based map).
        const S& state = *store().record(current).body;
        const uint32_t depth = store().record(current).depth;
        result.stats.max_depth =
          std::max<uint64_t>(result.stats.max_depth, depth);

        if (!expander_.within_constraint(state) ||
            budget.depth_exceeded(depth))
        {
          // Gated states are never expanded: they leave the frontier now.
          store().drop_body(current);
          continue;
        }

        bool violated = false;
        for (size_t a = 0; a < spec_.actions.size() && !violated; ++a)
        {
          spec_.actions[a].expand(state, [&](const S& next) {
            if (violated)
            {
              return;
            }
            result.stats.generated_states++;
            result.stats.transitions++;
            result.stats.action_coverage[spec_.actions[a].name]++;
            for (const auto& prop : spec_.action_properties)
            {
              if (!prop.check(state, next))
              {
                result.counterexample =
                  build_counterexample(current, prop.name);
                result.counterexample->steps.push_back(
                  {spec_.actions[a].name, next});
                violated = true;
                return;
              }
            }
            const auto ins = expander_.admit(
              store(), next, current, static_cast<uint32_t>(a), depth + 1);
            if (ins.inserted)
            {
              if (!check_state(next, ins.id, result))
              {
                violated = true;
              }
            }
            else
            {
              result.stats.duplicate_states++;
            }
          });
        }
        if (violated)
        {
          // Note: no drop_body here — the violating chain's tail states
          // are still live for reconstruct_counterexample's target match.
          result.ok = false;
          finish(result, budget, false);
          return result;
        }
        // Expanded: the state leaves the frontier (fingerprint-only mode
        // retires its body; full mode keeps everything).
        store().drop_body(current);
      }

      finish(result, budget, true);
      return result;
    }

    /// Budget cut the sequential run: records cursor..size-1 were admitted
    /// but never expanded — that is the leftover frontier.
    void export_sequential_frontier(size_t cursor)
    {
      // Unexpanded records never left the frontier, so their bodies are
      // live in every store mode.
      for (size_t i = cursor; i < store().size(); ++i)
      {
        frontier_out_.push_back(*store().record(static_cast<Id>(i)).body);
      }
    }

    /// Checks invariants; records a counterexample and returns false on
    /// violation.
    bool check_state(
      const S& state, Id id, CheckResult<S>& result)
    {
      for (const auto& inv : spec_.invariants)
      {
        if (!inv.check(state))
        {
          result.counterexample = build_counterexample(id, inv.name);
          result.ok = false;
          return false;
        }
      }
      return true;
    }

    Counterexample<S> build_counterexample(Id id, const std::string& property)
    {
      return reconstruct_counterexample(store(), spec_, id, property);
    }

    // ---- threads != 1 or shared store: frontier-batched BFS over a
    // WorkerPool (TLC's multi-worker model). A single worker drains each
    // level in insertion order — the same global FIFO order as the
    // sequential engine, so results match exactly. ----

    struct Item
    {
      S state;
      Id id;
      uint32_t depth;
    };

    struct WorkerLocal
    {
      std::vector<Item> next;
      uint64_t generated = 0;
      uint64_t transitions = 0;
      uint64_t duplicates = 0;
      uint64_t inserted = 0;
      uint64_t max_depth = 0;
      std::vector<uint64_t> coverage; // indexed by action
    };

    struct Violation
    {
      std::string property;
      /// Invariant: the violating state's ID. Action property: the
      /// predecessor's ID (the successor is carried separately because it
      /// was never inserted).
      Id at;
      uint32_t action = 0;
      std::optional<S> successor;
    };

    CheckResult<S> check_parallel()
    {
      const WorkerPool pool(limits_.threads);
      if (external_ == nullptr)
      {
        // Over-provision shards (4x workers) so two workers rarely hash
        // to the same stripe; a single worker keeps the sequential layout.
        owned_ = std::make_unique<Store>(
          pool.size() == 1 ? 1 : 4 * static_cast<size_t>(pool.size()),
          store_options());
      }
      Budget budget(limits_.budget_caps());
      CheckResult<S> result;
      violation_.reset();

      std::vector<Item> frontier;

      // Campaign seeding: every state another engine already admitted to
      // the shared store joins the initial frontier (its depth is the
      // depth recorded at admission).
      if (external_ != nullptr)
      {
        store().for_each(
          [&](Id id, const typename Store::RecordView& r) {
            // A fingerprint-only store has dropped expanded states'
            // bodies; only body-live records can seed the frontier (the
            // rest still deduplicate, which is their whole job).
            if (r.body != nullptr)
            {
              frontier.push_back({*r.body, id, r.depth});
            }
          });
        result.stats.seeded_states = frontier.size();
      }

      // Initial states are inserted and checked on the caller's thread, in
      // spec order, exactly as the sequential engine does.
      uint64_t inserted = 0;
      for (const S& init : spec_.init)
      {
        const auto ins = expander_.admit(
          store(), init, Store::no_parent, Store::init_action, 0);
        if (!ins.inserted)
        {
          result.stats.duplicate_states++;
          continue;
        }
        inserted++;
        result.stats.generated_states++;
        for (const auto& inv : spec_.invariants)
        {
          if (!inv.check(init))
          {
            result.counterexample =
              reconstruct_counterexample(store(), spec_, ins.id, inv.name);
            finish(result, budget, false, inserted);
            return result;
          }
        }
        frontier.push_back({init, ins.id, 0});
      }

      std::atomic<bool> stop{false};
      std::atomic<bool> out_of_budget{false};

      while (!frontier.empty() && !stop.load(std::memory_order_acquire))
      {
        std::atomic<size_t> cursor{0};
        std::vector<WorkerLocal> locals(pool.size());
        for (auto& local : locals)
        {
          local.coverage.assign(spec_.actions.size(), 0);
        }

        pool.run([&](unsigned w) {
          run_worker(frontier, cursor, stop, out_of_budget, budget, locals[w]);
        });

        // Level barrier: merge worker stats and splice the next frontier
        // (worker order, then generation order within a worker).
        std::vector<Item> next;
        for (unsigned w = 0; w < pool.size(); ++w)
        {
          WorkerLocal& local = locals[w];
          result.stats.generated_states += local.generated;
          result.stats.transitions += local.transitions;
          result.stats.duplicate_states += local.duplicates;
          inserted += local.inserted;
          result.stats.max_depth =
            std::max(result.stats.max_depth, local.max_depth);
          for (size_t a = 0; a < local.coverage.size(); ++a)
          {
            if (local.coverage[a] > 0)
            {
              result.stats.action_coverage[spec_.actions[a].name] +=
                local.coverage[a];
            }
          }
          next.insert(
            next.end(),
            std::make_move_iterator(local.next.begin()),
            std::make_move_iterator(local.next.end()));
        }

        // Budget cut: the leftover frontier is everything admitted but
        // never expanded — the unclaimed tail of this level (workers
        // check the budget *before* claiming) plus the level the workers
        // were building.
        if (out_of_budget.load(std::memory_order_acquire))
        {
          const size_t claimed =
            std::min(cursor.load(std::memory_order_relaxed), frontier.size());
          for (size_t i = claimed; i < frontier.size(); ++i)
          {
            frontier_out_.push_back(std::move(frontier[i].state));
          }
          for (Item& item : next)
          {
            frontier_out_.push_back(std::move(item.state));
          }
        }
        // Level barrier (workers joined, store quiescent): the expanded
        // level's states leave the frontier, and frozen arena blocks may
        // spill. Skipped on stop so a violation target's body stays live
        // for reconstruction.
        if (!stop.load(std::memory_order_acquire))
        {
          for (const Item& item : frontier)
          {
            store().drop_body(item.id);
          }
          store().maybe_spill();
        }
        frontier = std::move(next);
      }

      if (violation_.has_value())
      {
        const Violation& v = *violation_;
        result.counterexample =
          reconstruct_counterexample(store(), spec_, v.at, v.property);
        if (v.successor.has_value())
        {
          result.counterexample->steps.push_back(
            {spec_.actions[v.action].name, *v.successor});
        }
        finish(result, budget, false, inserted);
        return result;
      }

      finish(
        result,
        budget,
        !out_of_budget.load(std::memory_order_acquire),
        inserted);
      return result;
    }

    void run_worker(
      const std::vector<Item>& frontier,
      std::atomic<size_t>& cursor,
      std::atomic<bool>& stop,
      std::atomic<bool>& out_of_budget,
      const Budget& budget,
      WorkerLocal& local)
    {
      for (;;)
      {
        if (stop.load(std::memory_order_acquire))
        {
          return;
        }
        // Check the budget before claiming, so an unexpanded item stays
        // in the frontier's unclaimed tail for the leftover export.
        // store_bytes() is wait-free, so the byte ceiling is checked from
        // workers just like the work counter.
        if (budget.exhausted(store().size()) || over_memory_budget())
        {
          out_of_budget.store(true, std::memory_order_release);
          stop.store(true, std::memory_order_release);
          return;
        }
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= frontier.size())
        {
          return;
        }
        const Item& item = frontier[i];

        local.max_depth = std::max<uint64_t>(local.max_depth, item.depth);
        if (!expander_.within_constraint(item.state) ||
            budget.depth_exceeded(item.depth))
        {
          continue;
        }

        bool violated = false;
        for (size_t a = 0; a < spec_.actions.size() && !violated; ++a)
        {
          spec_.actions[a].expand(item.state, [&](const S& next) {
            if (violated || stop.load(std::memory_order_relaxed))
            {
              return;
            }
            local.generated++;
            local.transitions++;
            local.coverage[a]++;
            for (const auto& prop : spec_.action_properties)
            {
              if (!prop.check(item.state, next))
              {
                report_violation(
                  stop,
                  {prop.name, item.id, static_cast<uint32_t>(a), next});
                violated = true;
                return;
              }
            }
            const auto ins = expander_.admit(
              store(), next, item.id, static_cast<uint32_t>(a), item.depth + 1);
            if (ins.inserted)
            {
              local.inserted++;
              for (const auto& inv : spec_.invariants)
              {
                if (!inv.check(next))
                {
                  report_violation(
                    stop, {inv.name, ins.id, 0, std::nullopt});
                  violated = true;
                  return;
                }
              }
              local.next.push_back({next, ins.id, item.depth + 1});
            }
            else
            {
              local.duplicates++;
            }
          });
        }
        if (violated)
        {
          return;
        }
      }
    }

    /// First violation wins; later reports are dropped.
    void report_violation(std::atomic<bool>& stop, Violation v)
    {
      std::lock_guard<std::mutex> lock(violation_mu_);
      if (!violation_.has_value())
      {
        violation_ = std::move(v);
      }
      stop.store(true, std::memory_order_release);
    }

    /// `inserted` is the number of states this run admitted itself —
    /// equal to store().size() for a private store, but a shared store
    /// also holds other engines' discoveries, which must not be
    /// re-counted as this engine's coverage.
    void finish(
      CheckResult<S>& result,
      const Budget& budget,
      bool complete,
      uint64_t inserted = UINT64_MAX)
    {
      result.stats.distinct_states =
        external_ != nullptr ? inserted : store().size();
      result.stats.store_bytes = store().store_bytes();
      result.stats.spilled_bytes = store().spilled_bytes();
      result.stats.rehash_count = store().rehash_count();
      result.stats.seconds = budget.elapsed();
      result.stats.canonicalized_states = expander_.canonicalized_count();
      result.stats.symmetry_hits = expander_.symmetry_hit_count();
      if (budget.caps().time_budget_seconds < 1e17)
      {
        result.stats.budget_seconds = budget.caps().time_budget_seconds;
      }
      result.stats.complete = complete;
      if (result.counterexample)
      {
        result.ok = false;
      }
    }

    const SpecDef<S>& spec_;
    CheckLimits limits_;
    Expander<S> expander_;
    Store* external_ = nullptr;
    std::unique_ptr<Store> owned_;
    std::vector<S> frontier_out_;
    std::mutex violation_mu_;
    std::optional<Violation> violation_;
  };

  /// Entry point: dispatches on CheckLimits::threads. threads<=1 runs the
  /// sequential reference engine; anything else runs the worker pool.
  template <SpecState S>
  CheckResult<S> model_check(const SpecDef<S>& spec, CheckLimits limits = {})
  {
    ModelChecker<S> checker(spec, limits);
    return checker.check();
  }

  template <SpecState S>
  struct ReachabilityResult
  {
    /// Whether a state satisfying the predicate is reachable.
    bool reachable = false;
    /// The shortest action sequence to such a state (when reachable).
    std::vector<TraceStep<S>> witness;
    ExplorationStats stats;
    /// Exploration exhausted the bounded space: unreachable is definitive.
    bool definitive = false;
  };

  /// Searches for a reachable state satisfying `goal` — the standard trick
  /// of model checking ¬goal as an invariant, packaged. BFS returns the
  /// shortest witness.
  template <SpecState S>
  ReachabilityResult<S> find_reachable(
    const SpecDef<S>& spec,
    const std::string& goal_name,
    std::function<bool(const S&)> goal,
    CheckLimits limits = {})
  {
    SpecDef<S> probe = spec;
    probe.invariants.clear();
    probe.action_properties.clear();
    probe.invariants.push_back(
      {goal_name, [goal](const S& s) { return !goal(s); }});
    const auto result = model_check(probe, limits);
    ReachabilityResult<S> out;
    out.stats = result.stats;
    if (!result.ok && result.counterexample.has_value())
    {
      out.reachable = true;
      out.definitive = true;
      out.witness = result.counterexample->steps;
    }
    else
    {
      out.reachable = false;
      out.definitive = result.stats.complete;
    }
    return out;
  }
}
