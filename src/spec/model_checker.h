// Explicit-state model checking (the TLC analogue, §3/§4).
//
// Breadth-first exhaustive exploration of a SpecDef's reachable state
// space, checking every invariant on every distinct state and every action
// property on every transition. Counterexamples are reconstructed by
// walking the predecessor graph, so a violation comes with the shortest
// action sequence that reaches it — the same workflow the paper describes
// for translating spec counterexamples into functional tests (§7).
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <unordered_map>

#include "spec/spec.h"
#include "spec/stats.h"

namespace scv::spec
{
  struct CheckLimits
  {
    uint64_t max_distinct_states = UINT64_MAX;
    uint64_t max_depth = UINT64_MAX;
    double time_budget_seconds = 1e18;
  };

  template <SpecState S>
  struct CheckResult
  {
    bool ok = true;
    std::optional<Counterexample<S>> counterexample;
    ExplorationStats stats;
  };

  template <SpecState S>
  class ModelChecker
  {
  public:
    explicit ModelChecker(const SpecDef<S>& spec, CheckLimits limits = {}) :
      spec_(spec),
      limits_(limits)
    {}

    CheckResult<S> run()
    {
      const auto started = std::chrono::steady_clock::now();
      CheckResult<S> result;

      records_.clear();
      index_.clear();

      for (const S& init : spec_.init)
      {
        if (insert(init, -1, "<init>"))
        {
          result.stats.generated_states++;
          if (!check_state(init, records_.size() - 1, result))
          {
            finish(result, started, false);
            return result;
          }
        }
      }

      size_t cursor = 0;
      while (cursor < records_.size())
      {
        if (elapsed(started) > limits_.time_budget_seconds ||
            records_.size() >= limits_.max_distinct_states)
        {
          finish(result, started, false);
          return result;
        }

        const size_t current = cursor++;
        // Copy: records_ may reallocate during expansion.
        const S state = records_[current].state;
        const uint32_t depth = records_[current].depth;
        result.stats.max_depth =
          std::max<uint64_t>(result.stats.max_depth, depth);

        if (!spec_.within_constraint(state) || depth >= limits_.max_depth)
        {
          continue;
        }

        bool violated = false;
        for (size_t a = 0; a < spec_.actions.size() && !violated; ++a)
        {
          spec_.actions[a].expand(state, [&](const S& next) {
            if (violated)
            {
              return;
            }
            result.stats.generated_states++;
            result.stats.transitions++;
            result.stats.action_coverage[spec_.actions[a].name]++;
            for (const auto& prop : spec_.action_properties)
            {
              if (!prop.check(state, next))
              {
                result.counterexample =
                  build_counterexample(current, prop.name);
                result.counterexample->steps.push_back(
                  {spec_.actions[a].name, next});
                violated = true;
                return;
              }
            }
            if (insert(next, static_cast<int64_t>(current), spec_.actions[a].name))
            {
              if (!check_state(next, records_.size() - 1, result))
              {
                violated = true;
              }
            }
          });
        }
        if (violated)
        {
          result.ok = false;
          finish(result, started, false);
          return result;
        }
      }

      finish(result, started, true);
      return result;
    }

  private:
    struct Record
    {
      S state;
      int64_t parent;
      std::string action;
      uint32_t depth;
    };

    static double elapsed(std::chrono::steady_clock::time_point started)
    {
      return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - started)
        .count();
    }

    void finish(
      CheckResult<S>& result,
      std::chrono::steady_clock::time_point started,
      bool complete)
    {
      result.stats.distinct_states = records_.size();
      result.stats.seconds = elapsed(started);
      result.stats.complete = complete;
      if (result.counterexample)
      {
        result.ok = false;
      }
    }

    /// Returns true if the state was new.
    bool insert(const S& state, int64_t parent, const std::string& action)
    {
      const uint64_t fp = fingerprint(state);
      auto [it, inserted] = index_.try_emplace(fp);
      if (!inserted)
      {
        for (const size_t idx : it->second)
        {
          if (records_[idx].state == state)
          {
            return false;
          }
        }
      }
      const uint32_t depth =
        parent < 0 ? 0 : records_[static_cast<size_t>(parent)].depth + 1;
      records_.push_back({state, parent, action, depth});
      it->second.push_back(records_.size() - 1);
      return true;
    }

    /// Checks invariants; records a counterexample and returns false on
    /// violation.
    bool check_state(const S& state, size_t index, CheckResult<S>& result)
    {
      for (const auto& inv : spec_.invariants)
      {
        if (!inv.check(state))
        {
          result.counterexample =
            build_counterexample(static_cast<int64_t>(index), inv.name);
          result.ok = false;
          return false;
        }
      }
      return true;
    }

    Counterexample<S> build_counterexample(
      int64_t index, const std::string& property)
    {
      Counterexample<S> cex;
      cex.property = property;
      std::vector<TraceStep<S>> reversed;
      while (index >= 0)
      {
        const Record& r = records_[static_cast<size_t>(index)];
        reversed.push_back({r.action, r.state});
        index = r.parent;
      }
      cex.steps.assign(reversed.rbegin(), reversed.rend());
      return cex;
    }

    const SpecDef<S>& spec_;
    CheckLimits limits_;
    std::deque<Record> records_;
    std::unordered_map<uint64_t, std::vector<size_t>> index_;
  };

  /// Convenience wrapper.
  template <SpecState S>
  CheckResult<S> model_check(const SpecDef<S>& spec, CheckLimits limits = {})
  {
    ModelChecker<S> checker(spec, limits);
    return checker.run();
  }

  template <SpecState S>
  struct ReachabilityResult
  {
    /// Whether a state satisfying the predicate is reachable.
    bool reachable = false;
    /// The shortest action sequence to such a state (when reachable).
    std::vector<TraceStep<S>> witness;
    ExplorationStats stats;
    /// Exploration exhausted the bounded space: unreachable is definitive.
    bool definitive = false;
  };

  /// Searches for a reachable state satisfying `goal` — the standard trick
  /// of model checking ¬goal as an invariant, packaged. BFS returns the
  /// shortest witness.
  template <SpecState S>
  ReachabilityResult<S> find_reachable(
    const SpecDef<S>& spec,
    const std::string& goal_name,
    std::function<bool(const S&)> goal,
    CheckLimits limits = {})
  {
    SpecDef<S> probe = spec;
    probe.invariants.clear();
    probe.action_properties.clear();
    probe.invariants.push_back(
      {goal_name, [goal](const S& s) { return !goal(s); }});
    const auto result = model_check(probe, limits);
    ReachabilityResult<S> out;
    out.stats = result.stats;
    if (!result.ok && result.counterexample.has_value())
    {
      out.reachable = true;
      out.definitive = true;
      out.witness = result.counterexample->steps;
    }
    else
    {
      out.reachable = false;
      out.definitive = result.stats.complete;
    }
    return out;
  }
}
