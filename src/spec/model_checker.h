// Explicit-state model checking (the TLC analogue, §3/§4).
//
// Breadth-first exhaustive exploration of a SpecDef's reachable state
// space, checking every invariant on every distinct state and every action
// property on every transition. Counterexamples are reconstructed by
// walking the predecessor graph, so a violation comes with the shortest
// action sequence that reaches it — the same workflow the paper describes
// for translating spec counterexamples into functional tests (§7).
//
// Two engines share this interface, both built on the exploration core
// (Budget for limits, Expander for constraint/fingerprint/dedup,
// ShardedStateStore for the fingerprint set):
//   * ModelChecker — strictly sequential FIFO BFS (this file). The
//     reference semantics: deterministic traversal order, shortest
//     counterexamples.
//   * ParallelModelChecker (parallel_model_checker.h) — frontier-batched
//     BFS over a WorkerPool and a sharded fingerprint store; TLC's
//     multi-worker exploration model. `model_check()` dispatches on
//     CheckLimits::threads; threads=1 reproduces the sequential engine's
//     results exactly.
#pragma once

#include <optional>

#include "spec/budget.h"
#include "spec/expander.h"
#include "spec/sharded_state_store.h"
#include "spec/spec.h"
#include "spec/stats.h"

namespace scv::spec
{
  struct CheckLimits
  {
    uint64_t max_distinct_states = UINT64_MAX;
    uint64_t max_depth = UINT64_MAX;
    double time_budget_seconds = 1e18;
    /// Worker threads for exploration. 1 = the sequential engine
    /// (deterministic reference semantics); 0 = one worker per hardware
    /// thread; N>1 = parallel frontier-batched BFS with N workers.
    unsigned threads = 1;

    /// The exploration-core budget: work counter = distinct states.
    [[nodiscard]] Budget::Caps budget_caps() const
    {
      return {time_budget_seconds, max_distinct_states, max_depth};
    }
  };

  template <SpecState S>
  struct CheckResult
  {
    bool ok = true;
    std::optional<Counterexample<S>> counterexample;
    ExplorationStats stats;
  };

  template <SpecState S>
  class ModelChecker
  {
  public:
    explicit ModelChecker(const SpecDef<S>& spec, CheckLimits limits = {}) :
      spec_(spec),
      limits_(limits),
      expander_(&spec_),
      store_(1)
    {}

    CheckResult<S> run()
    {
      Budget budget(limits_.budget_caps());
      CheckResult<S> result;

      store_.clear();

      for (const S& init : spec_.init)
      {
        const auto ins = expander_.admit(
          store_, init, Store::no_parent, Store::init_action, 0);
        if (ins.inserted)
        {
          result.stats.generated_states++;
          if (!check_state(init, ins.id, result))
          {
            finish(result, budget, false);
            return result;
          }
        }
        else
        {
          result.stats.duplicate_states++;
        }
      }

      // With a single shard, IDs are dense 0..size-1 in insertion order, so
      // a cursor over IDs is the classic FIFO BFS queue.
      size_t cursor = 0;
      while (cursor < store_.size())
      {
        if (budget.exhausted(store_.size()))
        {
          finish(result, budget, false);
          return result;
        }

        const auto current = static_cast<typename Store::Id>(cursor++);
        // Deque-backed arena: references stay valid across inserts.
        const S& state = store_.record(current).state;
        const uint32_t depth = store_.record(current).depth;
        result.stats.max_depth =
          std::max<uint64_t>(result.stats.max_depth, depth);

        if (!expander_.within_constraint(state) ||
            budget.depth_exceeded(depth))
        {
          continue;
        }

        bool violated = false;
        for (size_t a = 0; a < spec_.actions.size() && !violated; ++a)
        {
          spec_.actions[a].expand(state, [&](const S& next) {
            if (violated)
            {
              return;
            }
            result.stats.generated_states++;
            result.stats.transitions++;
            result.stats.action_coverage[spec_.actions[a].name]++;
            for (const auto& prop : spec_.action_properties)
            {
              if (!prop.check(state, next))
              {
                result.counterexample =
                  build_counterexample(current, prop.name);
                result.counterexample->steps.push_back(
                  {spec_.actions[a].name, next});
                violated = true;
                return;
              }
            }
            const auto ins = expander_.admit(
              store_, next, current, static_cast<uint32_t>(a), depth + 1);
            if (ins.inserted)
            {
              if (!check_state(next, ins.id, result))
              {
                violated = true;
              }
            }
            else
            {
              result.stats.duplicate_states++;
            }
          });
        }
        if (violated)
        {
          result.ok = false;
          finish(result, budget, false);
          return result;
        }
      }

      finish(result, budget, true);
      return result;
    }

  private:
    using Store = ShardedStateStore<S>;

    void finish(CheckResult<S>& result, const Budget& budget, bool complete)
    {
      result.stats.distinct_states = store_.size();
      result.stats.seconds = budget.elapsed();
      result.stats.complete = complete;
      if (result.counterexample)
      {
        result.ok = false;
      }
    }

    /// Checks invariants; records a counterexample and returns false on
    /// violation.
    bool check_state(
      const S& state, typename Store::Id id, CheckResult<S>& result)
    {
      for (const auto& inv : spec_.invariants)
      {
        if (!inv.check(state))
        {
          result.counterexample = build_counterexample(id, inv.name);
          result.ok = false;
          return false;
        }
      }
      return true;
    }

    Counterexample<S> build_counterexample(
      typename Store::Id id, const std::string& property)
    {
      return reconstruct_counterexample(store_, spec_, id, property);
    }

    const SpecDef<S>& spec_;
    CheckLimits limits_;
    Expander<S> expander_;
    Store store_;
  };

  /// Walks the predecessor chain in `store` from `id` back to an initial
  /// state. Shared by the sequential and parallel engines; callers must
  /// ensure no concurrent inserts (see ShardedStateStore's contract).
  template <SpecState S>
  Counterexample<S> reconstruct_counterexample(
    const ShardedStateStore<S>& store,
    const SpecDef<S>& spec,
    typename ShardedStateStore<S>::Id id,
    const std::string& property)
  {
    using Store = ShardedStateStore<S>;
    Counterexample<S> cex;
    cex.property = property;
    std::vector<TraceStep<S>> reversed;
    for (auto cur = id; cur != Store::no_parent;)
    {
      const auto& r = store.record(cur);
      reversed.push_back(
        {r.action == Store::init_action ? "<init>" : spec.actions[r.action].name,
         r.state});
      cur = r.parent;
    }
    cex.steps.assign(reversed.rbegin(), reversed.rend());
    return cex;
  }
}

// The parallel engine and the model_check()/find_reachable() entry points
// (which dispatch on CheckLimits::threads) live in the companion header.
#include "spec/parallel_model_checker.h"
