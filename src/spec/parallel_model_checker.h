// Multi-worker explicit-state model checking (TLC's exploration model).
//
// The paper's TLC throughput numbers (Table 1) come from many workers
// draining a shared frontier over one shared fingerprint set; this is the
// same architecture for our checker, assembled from the exploration core:
// a WorkerPool runs each level, an Expander gates and fingerprints
// successors, the ShardedStateStore dedups them (lock-striped per shard),
// and a Budget bounds the run. Exploration is frontier-batched BFS: all
// states at depth d form one work vector, workers claim items with an
// atomic cursor, expand actions, and collect the next frontier in
// per-worker vectors that are concatenated at the level barrier.
//
// Properties:
//   * threads=1 reproduces the sequential ModelChecker exactly: one worker
//     drains each level in insertion order, which is the same global FIFO
//     order the sequential engine uses — same distinct-state count, same
//     counterexample, same stats.
//   * First violation wins: any worker that finds an invariant or action
//     property violation raises a stop flag; all workers drain out and the
//     counterexample is reconstructed from the store's predecessor links
//     after the pool has joined. Because levels are processed in order,
//     the reported trace is *level-minimal*: no strictly shorter
//     counterexample exists (workers racing within one level may pick a
//     different same-length violation than the sequential engine).
//   * The Budget (time, max distinct states, max depth) is checked per
//     claimed item, mirroring the sequential loop.
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "spec/budget.h"
#include "spec/expander.h"
#include "spec/model_checker.h"
#include "spec/sharded_state_store.h"
#include "spec/spec.h"
#include "spec/stats.h"
#include "spec/worker_pool.h"

namespace scv::spec
{
  template <SpecState S>
  class ParallelModelChecker
  {
  public:
    explicit ParallelModelChecker(
      const SpecDef<S>& spec, CheckLimits limits = {}) :
      spec_(spec),
      limits_(limits),
      expander_(&spec_),
      pool_(limits.threads),
      // Over-provision shards (4x workers) so two workers rarely hash to
      // the same stripe; a single worker keeps the sequential layout.
      store_(pool_.size() == 1 ? 1 : 4 * static_cast<size_t>(pool_.size()))
    {}

    CheckResult<S> run()
    {
      Budget budget(limits_.budget_caps());
      CheckResult<S> result;
      store_.clear();

      // Initial states are inserted and checked on the caller's thread, in
      // spec order, exactly as the sequential engine does.
      std::vector<Item> frontier;
      for (const S& init : spec_.init)
      {
        const auto ins = expander_.admit(
          store_, init, Store::no_parent, Store::init_action, 0);
        if (!ins.inserted)
        {
          result.stats.duplicate_states++;
          continue;
        }
        result.stats.generated_states++;
        for (const auto& inv : spec_.invariants)
        {
          if (!inv.check(init))
          {
            result.counterexample =
              reconstruct_counterexample(store_, spec_, ins.id, inv.name);
            finish(result, budget, false);
            return result;
          }
        }
        frontier.push_back({init, ins.id, 0});
      }

      std::atomic<bool> stop{false};
      std::atomic<bool> out_of_budget{false};

      while (!frontier.empty() && !stop.load(std::memory_order_acquire))
      {
        std::atomic<size_t> cursor{0};
        std::vector<WorkerLocal> locals(pool_.size());
        for (auto& local : locals)
        {
          local.coverage.assign(spec_.actions.size(), 0);
        }

        pool_.run([&](unsigned w) {
          run_worker(frontier, cursor, stop, out_of_budget, budget, locals[w]);
        });

        // Level barrier: merge worker stats and splice the next frontier
        // (worker order, then generation order within a worker).
        frontier.clear();
        for (unsigned w = 0; w < pool_.size(); ++w)
        {
          WorkerLocal& local = locals[w];
          result.stats.generated_states += local.generated;
          result.stats.transitions += local.transitions;
          result.stats.duplicate_states += local.duplicates;
          result.stats.max_depth =
            std::max(result.stats.max_depth, local.max_depth);
          for (size_t a = 0; a < local.coverage.size(); ++a)
          {
            if (local.coverage[a] > 0)
            {
              result.stats.action_coverage[spec_.actions[a].name] +=
                local.coverage[a];
            }
          }
          frontier.insert(
            frontier.end(),
            std::make_move_iterator(local.next.begin()),
            std::make_move_iterator(local.next.end()));
        }
      }

      if (violation_.has_value())
      {
        const Violation& v = *violation_;
        result.counterexample =
          reconstruct_counterexample(store_, spec_, v.at, v.property);
        if (v.successor.has_value())
        {
          result.counterexample->steps.push_back(
            {spec_.actions[v.action].name, *v.successor});
        }
        finish(result, budget, false);
        return result;
      }

      finish(result, budget, !out_of_budget.load(std::memory_order_acquire));
      return result;
    }

  private:
    using Store = ShardedStateStore<S>;
    using Id = typename Store::Id;

    struct Item
    {
      S state;
      Id id;
      uint32_t depth;
    };

    struct WorkerLocal
    {
      std::vector<Item> next;
      uint64_t generated = 0;
      uint64_t transitions = 0;
      uint64_t duplicates = 0;
      uint64_t max_depth = 0;
      std::vector<uint64_t> coverage; // indexed by action
    };

    struct Violation
    {
      std::string property;
      /// Invariant: the violating state's ID. Action property: the
      /// predecessor's ID (the successor is carried separately because it
      /// was never inserted).
      Id at;
      uint32_t action = 0;
      std::optional<S> successor;
    };

    void run_worker(
      const std::vector<Item>& frontier,
      std::atomic<size_t>& cursor,
      std::atomic<bool>& stop,
      std::atomic<bool>& out_of_budget,
      const Budget& budget,
      WorkerLocal& local)
    {
      for (;;)
      {
        if (stop.load(std::memory_order_acquire))
        {
          return;
        }
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= frontier.size())
        {
          return;
        }
        const Item& item = frontier[i];

        if (budget.exhausted(store_.size()))
        {
          out_of_budget.store(true, std::memory_order_release);
          stop.store(true, std::memory_order_release);
          return;
        }

        local.max_depth = std::max<uint64_t>(local.max_depth, item.depth);
        if (!expander_.within_constraint(item.state) ||
            budget.depth_exceeded(item.depth))
        {
          continue;
        }

        bool violated = false;
        for (size_t a = 0; a < spec_.actions.size() && !violated; ++a)
        {
          spec_.actions[a].expand(item.state, [&](const S& next) {
            if (violated || stop.load(std::memory_order_relaxed))
            {
              return;
            }
            local.generated++;
            local.transitions++;
            local.coverage[a]++;
            for (const auto& prop : spec_.action_properties)
            {
              if (!prop.check(item.state, next))
              {
                report_violation(
                  stop,
                  {prop.name, item.id, static_cast<uint32_t>(a), next});
                violated = true;
                return;
              }
            }
            const auto ins = expander_.admit(
              store_, next, item.id, static_cast<uint32_t>(a), item.depth + 1);
            if (ins.inserted)
            {
              for (const auto& inv : spec_.invariants)
              {
                if (!inv.check(next))
                {
                  report_violation(
                    stop, {inv.name, ins.id, 0, std::nullopt});
                  violated = true;
                  return;
                }
              }
              local.next.push_back({next, ins.id, item.depth + 1});
            }
            else
            {
              local.duplicates++;
            }
          });
        }
        if (violated)
        {
          return;
        }
      }
    }

    /// First violation wins; later reports are dropped.
    void report_violation(std::atomic<bool>& stop, Violation v)
    {
      std::lock_guard<std::mutex> lock(violation_mu_);
      if (!violation_.has_value())
      {
        violation_ = std::move(v);
      }
      stop.store(true, std::memory_order_release);
    }

    void finish(CheckResult<S>& result, const Budget& budget, bool complete)
    {
      result.stats.distinct_states = store_.size();
      result.stats.seconds = budget.elapsed();
      result.stats.complete = complete;
      if (result.counterexample)
      {
        result.ok = false;
      }
    }

    const SpecDef<S>& spec_;
    CheckLimits limits_;
    Expander<S> expander_;
    WorkerPool pool_;
    Store store_;
    std::mutex violation_mu_;
    std::optional<Violation> violation_;
  };

  /// Entry point: dispatches on CheckLimits::threads. threads<=1 runs the
  /// sequential reference engine; anything else runs the worker pool.
  template <SpecState S>
  CheckResult<S> model_check(const SpecDef<S>& spec, CheckLimits limits = {})
  {
    if (resolve_worker_count(limits.threads) == 1)
    {
      ModelChecker<S> checker(spec, limits);
      return checker.run();
    }
    ParallelModelChecker<S> checker(spec, limits);
    return checker.run();
  }

  template <SpecState S>
  struct ReachabilityResult
  {
    /// Whether a state satisfying the predicate is reachable.
    bool reachable = false;
    /// The shortest action sequence to such a state (when reachable).
    std::vector<TraceStep<S>> witness;
    ExplorationStats stats;
    /// Exploration exhausted the bounded space: unreachable is definitive.
    bool definitive = false;
  };

  /// Searches for a reachable state satisfying `goal` — the standard trick
  /// of model checking ¬goal as an invariant, packaged. BFS returns the
  /// shortest witness.
  template <SpecState S>
  ReachabilityResult<S> find_reachable(
    const SpecDef<S>& spec,
    const std::string& goal_name,
    std::function<bool(const S&)> goal,
    CheckLimits limits = {})
  {
    SpecDef<S> probe = spec;
    probe.invariants.clear();
    probe.action_properties.clear();
    probe.invariants.push_back(
      {goal_name, [goal](const S& s) { return !goal(s); }});
    const auto result = model_check(probe, limits);
    ReachabilityResult<S> out;
    out.stats = result.stats;
    if (!result.ok && result.counterexample.has_value())
    {
      out.reachable = true;
      out.definitive = true;
      out.witness = result.counterexample->steps;
    }
    else
    {
      out.reachable = false;
      out.definitive = result.stats.complete;
    }
    return out;
  }
}
