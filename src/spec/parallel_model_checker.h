// Deprecated shim: ParallelModelChecker folded into ModelChecker.
//
// ModelChecker::check() now dispatches on CheckLimits::threads itself
// (threads = 1 sequential reference engine, threads != 1 frontier-batched
// worker-pool BFS), the same way TraceValidator always has. The old class
// name remains as an alias for one deprecation cycle.
#pragma once

#include "spec/model_checker.h"

namespace scv::spec
{
  template <SpecState S>
  using ParallelModelChecker
    [[deprecated("use ModelChecker; check() dispatches on threads")]] =
      ModelChecker<S>;
}
