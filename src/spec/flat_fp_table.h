// Flat open-addressing fingerprint index shared by the sharded state
// store's per-shard index and the StripedKeySet stripes.
//
// One table maps 64-bit fingerprints to 32-bit local record indices with
// linear probing over a power-of-two slot array. Compared to the previous
// std::unordered_map<uint64_t, std::vector<uint32_t>> per-shard index this
// removes the per-bucket node and per-chain vector allocations (~4x less
// index memory at scale) and makes lookups one cache-line walk in the
// common case.
//
// Layout: two parallel arrays (fps_, locals_) rather than one struct array,
// so a slot costs exactly 12 bytes instead of 16 with alignment padding.
// A slot is empty iff its local is empty_slot; fingerprints of empty slots
// are never read. Duplicate fingerprints are allowed (full-state stores
// keep one entry per *state*, so genuine 64-bit collisions become multiple
// entries with the same fingerprint); find() visits all of them in probe
// order. There is no deletion — exploration stores only grow, then clear.
//
// The home slot uses the *high* bits of a Fibonacci-mixed fingerprint:
// shard selection already consumes the low bits of (fp ^ fp >> 32), so
// probing must not rely on them (all fingerprints in one shard share those
// bits).
//
// Not thread-safe: callers (store shards, key-set stripes) wrap each table
// in their own mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace scv::spec
{
  class FlatFpTable
  {
  public:
    /// locals_ value marking an empty slot; valid record indices must stay
    /// below it (2^32 - 1 records per shard).
    static constexpr uint32_t empty_slot = ~uint32_t{0};

    explicit FlatFpTable(size_t initial_capacity = 16)
    {
      size_t n = 16;
      while (n < initial_capacity)
      {
        n <<= 1;
      }
      allocate(n);
    }

    [[nodiscard]] size_t size() const
    {
      return size_;
    }

    [[nodiscard]] size_t capacity() const
    {
      return capacity_;
    }

    /// Amortized-rehash grows performed since construction/clear().
    [[nodiscard]] uint64_t rehash_count() const
    {
      return rehashes_;
    }

    /// Bytes held by the slot arrays (12 per slot).
    [[nodiscard]] size_t bytes() const
    {
      return capacity_ * (sizeof(uint64_t) + sizeof(uint32_t));
    }

    /// Visits every entry whose fingerprint equals `fp`, in probe order
    /// (insertion order per fingerprint, modulo rehash). fn returns true
    /// to stop early; find() then returns true. Returns false when no
    /// entry satisfied fn.
    template <class Fn>
    bool find(uint64_t fp, Fn&& fn) const
    {
      for (size_t i = home(fp);; i = (i + 1) & (capacity_ - 1))
      {
        if (locals_[i] == empty_slot)
        {
          return false;
        }
        if (fps_[i] == fp && fn(locals_[i]))
        {
          return true;
        }
      }
    }

    /// First entry with this fingerprint, or empty_slot. The
    /// fingerprint-only store's whole dedup check.
    [[nodiscard]] uint32_t first(uint64_t fp) const
    {
      uint32_t found = empty_slot;
      find(fp, [&](uint32_t local) {
        found = local;
        return true;
      });
      return found;
    }

    [[nodiscard]] bool contains(uint64_t fp) const
    {
      return first(fp) != empty_slot;
    }

    /// Unconditional insert (dedup is the caller's policy); grows the
    /// table first when the load factor would cross ~0.65.
    void insert(uint64_t fp, uint32_t local)
    {
      if ((size_ + 1) * 20 >= capacity_ * 13)
      {
        rehash(capacity_ << 1);
      }
      place(fp, local);
      ++size_;
    }

    /// Empties the table but keeps its capacity: per-line clears
    /// (prune_bfs_store) refill to a similar size and should not re-pay
    /// the rehash ladder every line.
    void clear()
    {
      for (size_t i = 0; i < capacity_; ++i)
      {
        locals_[i] = empty_slot;
      }
      size_ = 0;
      rehashes_ = 0;
    }

  private:
    [[nodiscard]] size_t home(uint64_t fp) const
    {
      // Fibonacci multiplicative hash; take the high bits so the home is
      // independent of the low shard-selection bits.
      return static_cast<size_t>(
        (fp * 0x9E3779B97F4A7C15ULL) >> (64 - capacity_log2_));
    }

    void place(uint64_t fp, uint32_t local)
    {
      size_t i = home(fp);
      while (locals_[i] != empty_slot)
      {
        i = (i + 1) & (capacity_ - 1);
      }
      fps_[i] = fp;
      locals_[i] = local;
    }

    void allocate(size_t n)
    {
      capacity_ = n;
      capacity_log2_ = 0;
      while ((size_t{1} << capacity_log2_) < n)
      {
        ++capacity_log2_;
      }
      fps_ = std::make_unique<uint64_t[]>(n);
      locals_ = std::make_unique<uint32_t[]>(n);
      for (size_t i = 0; i < n; ++i)
      {
        locals_[i] = empty_slot;
      }
    }

    void rehash(size_t new_capacity)
    {
      const size_t old_capacity = capacity_;
      std::unique_ptr<uint64_t[]> old_fps = std::move(fps_);
      std::unique_ptr<uint32_t[]> old_locals = std::move(locals_);
      allocate(new_capacity);
      for (size_t i = 0; i < old_capacity; ++i)
      {
        if (old_locals[i] != empty_slot)
        {
          place(old_fps[i], old_locals[i]);
        }
      }
      ++rehashes_;
    }

    size_t capacity_ = 0;
    unsigned capacity_log2_ = 0;
    std::unique_ptr<uint64_t[]> fps_;
    std::unique_ptr<uint32_t[]> locals_;
    size_t size_ = 0;
    uint64_t rehashes_ = 0;
  };
}
