// Sharded fingerprint store for parallel state-space exploration.
//
// TLC scales to many workers by sharing one fingerprint set across
// threads; this is the analogous structure for our checker. The store is
// split into N lock-striped shards (N a power of two), selected by the low
// bits of the state fingerprint. Each shard owns its own hash index
// (fingerprint -> collision chain of local records) and record arena, so
// concurrent inserts on different shards never contend and inserts on the
// same shard serialize on one small mutex.
//
// Global state IDs are stable across shards: id = (local_index <<
// shard_bits) | shard. Predecessor links stored in records use these
// global IDs, so counterexample reconstruction walks parents across shard
// boundaries exactly as the sequential checker walks its flat arena.
//
// Dedup is fingerprint-first: the index is keyed by the 64-bit
// fingerprint, and the full state comparison (operator==) runs only for
// records whose fingerprint collides — the common case touches the state
// bytes zero times.
//
// Concurrency contract:
//   * insert() and size() may be called from any thread at any time.
//   * record() takes no lock: call it only for IDs the caller inserted
//     itself, or once all writers have been joined (counterexample
//     reconstruction happens after the worker pool stops).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "spec/spec.h"

namespace scv::spec
{
  /// Lock-striped set of 64-bit keys — the store's striping pattern
  /// without records. Used where parallel workers share a pure
  /// membership table rather than full states: the work-stealing DFS
  /// trace validator's (line, fingerprint) dead-end memo, where one
  /// worker's proven-dead subtree must prune every other worker's
  /// search. Same contract as the store: insert() and contains() may be
  /// called from any thread; stripe selection mixes the high half of the
  /// key into the low bits.
  class StripedKeySet
  {
  public:
    explicit StripedKeySet(size_t stripe_count = 1)
    {
      size_t n = 1;
      while (n < stripe_count)
      {
        n <<= 1;
      }
      mask_ = n - 1;
      stripes_ = std::vector<Stripe>(n);
    }

    /// Inserts the key; returns true iff it was not already present.
    bool insert(uint64_t key)
    {
      Stripe& stripe = stripes_[stripe_of(key)];
      std::lock_guard<std::mutex> lock(stripe.mu);
      return stripe.keys.insert(key).second;
    }

    [[nodiscard]] bool contains(uint64_t key) const
    {
      const Stripe& stripe = stripes_[stripe_of(key)];
      std::lock_guard<std::mutex> lock(stripe.mu);
      return stripe.keys.contains(key);
    }

    /// Exact when quiescent; a lower bound while writers run.
    [[nodiscard]] size_t size() const
    {
      size_t total = 0;
      for (const Stripe& stripe : stripes_)
      {
        std::lock_guard<std::mutex> lock(stripe.mu);
        total += stripe.keys.size();
      }
      return total;
    }

  private:
    struct Stripe
    {
      mutable std::mutex mu;
      std::unordered_set<uint64_t> keys;
    };

    [[nodiscard]] size_t stripe_of(uint64_t key) const
    {
      return static_cast<size_t>((key ^ (key >> 32)) & mask_);
    }

    std::vector<Stripe> stripes_;
    uint64_t mask_ = 0;
  };

  template <SpecState S>
  class ShardedStateStore
  {
  public:
    using Id = uint64_t;
    static constexpr Id no_parent = ~Id{0};
    static constexpr uint32_t init_action = ~uint32_t{0};

    /// Admissions are tagged with the discovering engine (an EngineId
    /// byte; engine.h defines the values) so a campaign sharing one store
    /// across checker, simulator and validator can report per-engine
    /// first-discovery counts next to the unioned total. Standalone
    /// engines leave it 0.
    static constexpr size_t max_origins = 4;

    struct Record
    {
      S state;
      Id parent; // no_parent for initial states
      uint32_t action; // index into the spec's action list; init_action
      uint32_t depth;
      uint8_t origin = 0; // EngineId of the first discoverer
    };

    struct InsertResult
    {
      Id id;
      bool inserted;
    };

    explicit ShardedStateStore(size_t shard_count = 1)
    {
      size_t n = 1;
      while (n < shard_count)
      {
        n <<= 1;
      }
      shard_mask_ = n - 1;
      shard_bits_ = 0;
      while ((size_t{1} << shard_bits_) < n)
      {
        ++shard_bits_;
      }
      shards_ = std::vector<Shard>(n);
    }

    [[nodiscard]] size_t shard_count() const
    {
      return shards_.size();
    }

    [[nodiscard]] Id encode(size_t shard, size_t local) const
    {
      return (static_cast<Id>(local) << shard_bits_) | shard;
    }

    [[nodiscard]] size_t shard_of(Id id) const
    {
      return static_cast<size_t>(id & shard_mask_);
    }

    [[nodiscard]] size_t local_of(Id id) const
    {
      return static_cast<size_t>(id >> shard_bits_);
    }

    /// Which shard a fingerprint maps to.
    [[nodiscard]] size_t shard_for_fingerprint(uint64_t fp) const
    {
      // The low bits pick the shard; mix the high half in first so that
      // states whose fingerprints differ only above bit 32 still spread.
      return static_cast<size_t>((fp ^ (fp >> 32)) & shard_mask_);
    }

    /// Inserts the state unless an equal state is already present.
    /// Fingerprint-first: full state comparison only on fp collision.
    /// `origin` tags the discovering engine (first inserter wins the tag).
    InsertResult insert(
      const S& state,
      uint64_t fp,
      Id parent,
      uint32_t action,
      uint32_t depth,
      uint8_t origin = 0)
    {
      const size_t shard_idx = shard_for_fingerprint(fp);
      Shard& shard = shards_[shard_idx];
      std::lock_guard<std::mutex> lock(shard.mu);
      auto [it, fresh] = shard.index.try_emplace(fp);
      if (!fresh)
      {
        for (const uint32_t local : it->second)
        {
          if (shard.records[local].state == state)
          {
            return {encode(shard_idx, local), false};
          }
        }
      }
      const auto local = static_cast<uint32_t>(shard.records.size());
      shard.records.push_back({state, parent, action, depth, origin});
      it->second.push_back(local);
      shard.origin_counts[origin % max_origins]++;
      shard.published.store(shard.records.size(), std::memory_order_release);
      return {encode(shard_idx, local), true};
    }

    /// Total states stored. Exact when quiescent; during a run it is a
    /// monotone lower bound (each shard's count is published atomically).
    [[nodiscard]] size_t size() const
    {
      size_t total = 0;
      for (const Shard& shard : shards_)
      {
        total += shard.published.load(std::memory_order_acquire);
      }
      return total;
    }

    /// Unsynchronized record access — see the concurrency contract above.
    [[nodiscard]] const Record& record(Id id) const
    {
      return shards_[shard_of(id)].records[local_of(id)];
    }

    /// States first discovered by `origin` (the admission tag). Exact when
    /// quiescent; origin counts over all origins sum to size().
    [[nodiscard]] uint64_t origin_count(uint8_t origin) const
    {
      uint64_t total = 0;
      for (const Shard& shard : shards_)
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.origin_counts[origin % max_origins];
      }
      return total;
    }

    /// Visits every record as fn(id, record), shard by shard in insertion
    /// order. Quiescent callers only (same contract as record()): a
    /// campaign seeds the next engine's frontier from the previous
    /// engine's discoveries strictly between runs.
    template <class Fn>
    void for_each(Fn&& fn) const
    {
      for (size_t shard_idx = 0; shard_idx < shards_.size(); ++shard_idx)
      {
        const Shard& shard = shards_[shard_idx];
        for (size_t local = 0; local < shard.records.size(); ++local)
        {
          fn(encode(shard_idx, local), shard.records[local]);
        }
      }
    }

    void clear()
    {
      for (Shard& shard : shards_)
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.index.clear();
        shard.records.clear();
        shard.origin_counts.fill(0);
        shard.published.store(0, std::memory_order_release);
      }
    }

  private:
    struct Shard
    {
      mutable std::mutex mu;
      // fingerprint -> chain of local record indices with that fingerprint
      std::unordered_map<uint64_t, std::vector<uint32_t>> index;
      // deque: growth never moves existing records
      std::deque<Record> records;
      // first-discovery counts per admission origin (EngineId byte)
      std::array<uint64_t, max_origins> origin_counts{};
      std::atomic<size_t> published{0};
    };

    std::vector<Shard> shards_;
    uint64_t shard_mask_ = 0;
    unsigned shard_bits_ = 0;
  };
}
