// Sharded fingerprint store for parallel state-space exploration.
//
// TLC scales to many workers by sharing one fingerprint set across
// threads; this is the analogous structure for our checker. The store is
// split into N lock-striped shards (N a power of two), selected by the low
// bits of the state fingerprint. Each shard owns its own index and record
// arena, so concurrent inserts on different shards never contend and
// inserts on the same shard serialize on one small mutex.
//
// Layout (docs/SPEC.md "Store modes"):
//   * Index: a flat open-addressing table (FlatFpTable) per shard —
//     fingerprint -> local record index, 12 bytes per slot, no per-insert
//     allocation, amortized power-of-two rehash under the shard lock.
//   * Hot arena: one 16-byte HotRecord (parent id, action, 24-bit depth,
//     8-bit origin) per state, in 1 MiB slab blocks that never move, so
//     record() references stay valid across inserts.
//   * Bodies: StoreMode::full keeps every S for the store's lifetime
//     (dedup falls back to operator== on fingerprint collision —
//     bit-identical to the pre-mode store). StoreMode::fingerprint_only
//     keeps bodies only for the frontier: engines call drop_body() once a
//     state has been expanded, dedup is by fingerprint alone, and paths
//     are rebuilt by replaying the recorded action chain from the initial
//     states (reconstruct_path()).
//   * Spill: with StoreOptions::spill_dir set, maybe_spill() writes
//     frozen (full) hot-arena blocks to an unlinked per-shard temp file
//     and mmaps them back read-only, freeing the heap copy. Quiescent
//     callers only — engines spill at level barriers.
//
// Global state IDs are stable across shards: id = (local_index <<
// shard_bits) | shard. Predecessor links stored in records use these
// global IDs, so counterexample reconstruction walks parents across shard
// boundaries exactly as the sequential checker walks its flat arena.
//
// Concurrency contract (applies to size(), origin_count() and
// store_bytes()/spilled_bytes(), all of which read atomics wait-free):
//   * insert() may be called from any thread at any time; the wait-free
//     readers above are exact once writers are quiescent and a monotone
//     lower bound while they run.
//   * record()/body() take no lock: call them only for IDs the caller
//     inserted itself, or once all writers have been joined
//     (counterexample reconstruction happens after the worker pool
//     stops).
//   * drop_body() takes the shard lock, so it may run concurrently with
//     insert() (the simulator and the validator's coverage tap retire
//     bodies mid-run) — but never concurrently with a record()/body()
//     reader of the same id.
//   * maybe_spill(), for_each(), reconstruct_path() and clear() are
//     quiescent-only.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include "spec/flat_fp_table.h"
#include "spec/spec.h"
#include "spec/store_options.h"

namespace scv::spec
{
  /// Lock-striped set of 64-bit keys — the store's striping pattern
  /// without records, on the same flat open-addressing tables as the
  /// store's index (no std::unordered_set node churn). Used where
  /// parallel workers share a pure membership table rather than full
  /// states: the work-stealing DFS trace validator's (line, fingerprint)
  /// dead-end memo, where one worker's proven-dead subtree must prune
  /// every other worker's search. Same contract as the store: insert()
  /// and contains() may be called from any thread; stripe selection
  /// mixes the high half of the key into the low bits.
  class StripedKeySet
  {
  public:
    explicit StripedKeySet(size_t stripe_count = 1)
    {
      size_t n = 1;
      while (n < stripe_count)
      {
        n <<= 1;
      }
      mask_ = n - 1;
      stripes_ = std::vector<Stripe>(n);
    }

    /// Inserts the key; returns true iff it was not already present.
    bool insert(uint64_t key)
    {
      Stripe& stripe = stripes_[stripe_of(key)];
      std::lock_guard<std::mutex> lock(stripe.mu);
      if (stripe.table.contains(key))
      {
        return false;
      }
      stripe.table.insert(key, 0);
      return true;
    }

    [[nodiscard]] bool contains(uint64_t key) const
    {
      const Stripe& stripe = stripes_[stripe_of(key)];
      std::lock_guard<std::mutex> lock(stripe.mu);
      return stripe.table.contains(key);
    }

    /// Exact when quiescent; a lower bound while writers run.
    [[nodiscard]] size_t size() const
    {
      size_t total = 0;
      for (const Stripe& stripe : stripes_)
      {
        std::lock_guard<std::mutex> lock(stripe.mu);
        total += stripe.table.size();
      }
      return total;
    }

  private:
    struct Stripe
    {
      mutable std::mutex mu;
      FlatFpTable table;
    };

    [[nodiscard]] size_t stripe_of(uint64_t key) const
    {
      return static_cast<size_t>((key ^ (key >> 32)) & mask_);
    }

    std::vector<Stripe> stripes_;
    uint64_t mask_ = 0;
  };

  template <SpecState S>
  class ShardedStateStore
  {
  public:
    using Id = uint64_t;
    static constexpr Id no_parent = ~Id{0};
    static constexpr uint32_t init_action = ~uint32_t{0};
    /// Depths saturate at 24 bits in the packed hot record.
    static constexpr uint32_t depth_limit = (uint32_t{1} << 24) - 1;

    /// Admissions are tagged with the discovering engine (an EngineId
    /// byte; engine.h defines the values) so a campaign sharing one store
    /// across checker, simulator and validator can report per-engine
    /// first-discovery counts next to the unioned total. Standalone
    /// engines leave it 0.
    static constexpr size_t max_origins = 4;

    /// The per-state bookkeeping that survives in fingerprint-only mode:
    /// everything path reconstruction needs, packed to 16 bytes.
    struct HotRecord
    {
      Id parent; // no_parent for initial states
      uint32_t action; // index into the spec's action list; init_action
      uint32_t packed; // depth (24 bits, saturating) << 8 | origin
    };
    static_assert(sizeof(HotRecord) == 16, "hot arena packing");

    /// What record() hands out: the hot fields unpacked plus the body
    /// pointer, which is null once a fingerprint-only store dropped the
    /// body (drop_body()).
    struct RecordView
    {
      Id parent;
      uint32_t action;
      uint32_t depth;
      uint8_t origin;
      const S* body;

      /// The state body; callers on full-mode stores (or frontier
      /// records) may dereference unconditionally.
      [[nodiscard]] const S& state() const
      {
        return *body;
      }
    };

    struct InsertResult
    {
      Id id;
      bool inserted;
    };

    explicit ShardedStateStore(
      size_t shard_count = 1, StoreOptions options = {}) :
      options_(std::move(options))
    {
      size_t n = 1;
      while (n < shard_count)
      {
        n <<= 1;
      }
      shard_mask_ = n - 1;
      shard_bits_ = 0;
      while ((size_t{1} << shard_bits_) < n)
      {
        ++shard_bits_;
      }
      shards_ = std::vector<Shard>(n);
    }

    ~ShardedStateStore()
    {
      release_spill();
    }

    ShardedStateStore(const ShardedStateStore&) = delete;
    ShardedStateStore& operator=(const ShardedStateStore&) = delete;

    [[nodiscard]] const StoreOptions& options() const
    {
      return options_;
    }

    [[nodiscard]] bool fingerprint_only() const
    {
      return options_.fingerprint_only();
    }

    [[nodiscard]] size_t shard_count() const
    {
      return shards_.size();
    }

    [[nodiscard]] Id encode(size_t shard, size_t local) const
    {
      return (static_cast<Id>(local) << shard_bits_) | shard;
    }

    [[nodiscard]] size_t shard_of(Id id) const
    {
      return static_cast<size_t>(id & shard_mask_);
    }

    [[nodiscard]] size_t local_of(Id id) const
    {
      return static_cast<size_t>(id >> shard_bits_);
    }

    /// Which shard a fingerprint maps to.
    [[nodiscard]] size_t shard_for_fingerprint(uint64_t fp) const
    {
      // The low bits pick the shard; mix the high half in first so that
      // states whose fingerprints differ only above bit 32 still spread.
      // (The index's probe order uses the *high* bits of a multiplied
      // hash, so the two selections stay independent.)
      return static_cast<size_t>((fp ^ (fp >> 32)) & shard_mask_);
    }

    /// Inserts the state unless an equal state is already present.
    /// Full mode: fingerprint-first dedup, full state comparison only on
    /// fp collision. Fingerprint-only mode: the fingerprint alone decides
    /// — a genuine 64-bit collision silently conflates two states (the
    /// TLC trade; see StoreMode). `origin` tags the discovering engine
    /// (first inserter wins the tag).
    InsertResult insert(
      const S& state,
      uint64_t fp,
      Id parent,
      uint32_t action,
      uint32_t depth,
      uint8_t origin = 0)
    {
      const size_t shard_idx = shard_for_fingerprint(fp);
      Shard& shard = shards_[shard_idx];
      std::lock_guard<std::mutex> lock(shard.mu);
      if (options_.fingerprint_dedup())
      {
        const uint32_t hit = shard.index.first(fp);
        if (hit != FlatFpTable::empty_slot)
        {
          return {encode(shard_idx, hit), false};
        }
      }
      else
      {
        uint32_t hit = FlatFpTable::empty_slot;
        shard.index.find(fp, [&](uint32_t local) {
          if (shard.bodies[local] == state)
          {
            hit = local;
            return true;
          }
          return false;
        });
        if (hit != FlatFpTable::empty_slot)
        {
          return {encode(shard_idx, hit), false};
        }
      }

      const auto local = static_cast<uint32_t>(shard.count);
      hot_slot(shard, local) = {
        parent, action, (std::min(depth, depth_limit) << 8) | origin};
      if (fingerprint_only())
      {
        shard.frontier_bodies.emplace(local, state);
        shard.body_bytes.fetch_add(
          frontier_body_bytes, std::memory_order_relaxed);
      }
      else
      {
        shard.bodies.push_back(state);
        shard.body_bytes.fetch_add(sizeof(S), std::memory_order_relaxed);
      }
      shard.index.insert(fp, local);
      shard.index_bytes.store(
        shard.index.bytes(), std::memory_order_relaxed);
      shard.rehashes.store(
        shard.index.rehash_count(), std::memory_order_relaxed);
      shard.count++;
      shard.origin_counts[origin % max_origins].fetch_add(
        1, std::memory_order_relaxed);
      shard.published.store(shard.count, std::memory_order_release);
      return {encode(shard_idx, local), true};
    }

    /// Total states stored. Exact when quiescent; during a run it is a
    /// monotone lower bound (each shard's count is published atomically).
    [[nodiscard]] size_t size() const
    {
      size_t total = 0;
      for (const Shard& shard : shards_)
      {
        total += shard.published.load(std::memory_order_acquire);
      }
      return total;
    }

    /// Unsynchronized record access — see the concurrency contract above.
    [[nodiscard]] RecordView record(Id id) const
    {
      const Shard& shard = shards_[shard_of(id)];
      const auto local = static_cast<uint32_t>(local_of(id));
      const HotRecord& hot =
        shard.blocks[local >> block_shift].data[local & block_mask];
      return {
        hot.parent,
        hot.action,
        hot.packed >> 8,
        static_cast<uint8_t>(hot.packed & 0xFF),
        body_ptr(shard, local)};
    }

    /// The state body, or nullptr once a fingerprint-only store dropped
    /// it. Same contract as record().
    [[nodiscard]] const S* body(Id id) const
    {
      return body_ptr(
        shards_[shard_of(id)], static_cast<uint32_t>(local_of(id)));
    }

    /// Fingerprint-only mode: retires the body of a state that has left
    /// the frontier (it was expanded, or will never be). Idempotent;
    /// no-op in full mode. Takes the shard lock, so it is safe against
    /// concurrent insert()s — but not against a concurrent
    /// record()/body() reader of the same id (see the header contract).
    void drop_body(Id id)
    {
      if (!fingerprint_only())
      {
        return;
      }
      Shard& shard = shards_[shard_of(id)];
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.frontier_bodies.erase(static_cast<uint32_t>(local_of(id))) >
          0)
      {
        shard.body_bytes.fetch_sub(
          frontier_body_bytes, std::memory_order_relaxed);
      }
    }

    /// States first discovered by `origin` (the admission tag). Wait-free
    /// (atomic per-shard counters); exact when quiescent, a lower bound
    /// while writers run — the one quiescence contract size(),
    /// origin_count() and store_bytes() all share (see the header
    /// comment). Origin counts over all origins sum to size().
    [[nodiscard]] uint64_t origin_count(uint8_t origin) const
    {
      uint64_t total = 0;
      for (const Shard& shard : shards_)
      {
        total +=
          shard.origin_counts[origin % max_origins].load(
            std::memory_order_relaxed);
      }
      return total;
    }

    /// Resident bytes: index slots + heap (unspilled) hot-arena blocks +
    /// state bodies. Body bytes are an estimate (sizeof(S) per retained
    /// body plus map overhead for frontier bodies); states owning heap
    /// memory cost more than reported. Wait-free; exact when quiescent.
    [[nodiscard]] size_t store_bytes() const
    {
      size_t total = 0;
      for (const Shard& shard : shards_)
      {
        total += shard.index_bytes.load(std::memory_order_relaxed);
        total += shard.heap_arena_bytes.load(std::memory_order_relaxed);
        total += shard.body_bytes.load(std::memory_order_relaxed);
      }
      return total;
    }

    /// Hot-arena bytes moved to disk by maybe_spill() (and mmap'd back).
    [[nodiscard]] size_t spilled_bytes() const
    {
      size_t total = 0;
      for (const Shard& shard : shards_)
      {
        total += shard.spilled_bytes.load(std::memory_order_relaxed);
      }
      return total;
    }

    /// Index rehashes across all shards (amortized table doubling).
    [[nodiscard]] uint64_t rehash_count() const
    {
      uint64_t total = 0;
      for (const Shard& shard : shards_)
      {
        total += shard.rehashes.load(std::memory_order_relaxed);
      }
      return total;
    }

    /// Spills frozen hot-arena blocks to spill_dir while a shard's heap
    /// arena exceeds its budget share (memory_budget_bytes / shards; a
    /// zero budget spills every frozen block). Each spilled block is
    /// pwritten to an unlinked per-shard temp file, mmap'd back
    /// PROT_READ, and the heap copy freed — record() reads continue
    /// through the mapping unchanged. Quiescent callers only: engines
    /// call this at level barriers. No-op without a spill_dir.
    void maybe_spill()
    {
      if (!options_.spill_enabled())
      {
        return;
      }
      const size_t shard_budget =
        options_.memory_budget_bytes / shards_.size();
      for (Shard& shard : shards_)
      {
        // Only full ("frozen") blocks spill; the tail block still grows.
        const size_t frozen =
          shard.blocks.empty() ? 0 : shard.blocks.size() - 1;
        while (
          shard.first_unspilled < frozen &&
          shard.heap_arena_bytes.load(std::memory_order_relaxed) >
            shard_budget)
        {
          if (!spill_block(shard, shard.first_unspilled))
          {
            break; // I/O failure: keep the heap copy, stop trying
          }
          shard.first_unspilled++;
        }
      }
    }

    /// Visits every record as fn(id, view), shard by shard in insertion
    /// order; view.body is null for dropped bodies. Quiescent callers
    /// only (same contract as record()): a campaign seeds the next
    /// engine's frontier from the previous engine's discoveries strictly
    /// between runs.
    template <class Fn>
    void for_each(Fn&& fn) const
    {
      for (size_t shard_idx = 0; shard_idx < shards_.size(); ++shard_idx)
      {
        const Shard& shard = shards_[shard_idx];
        for (uint32_t local = 0; local < shard.count; ++local)
        {
          fn(encode(shard_idx, local), record(encode(shard_idx, local)));
        }
      }
    }

    /// Rebuilds the concrete state path from an initial state to
    /// `target` (inclusive, root first).
    ///
    /// Fast path: when every body along the parent chain is still live
    /// (always true in full mode), the chain is read directly —
    /// bit-identical to the pre-mode reconstruction.
    ///
    /// Replay path (fingerprint-only, bodies dropped): the recorded
    /// action chain is re-executed from `inits` through `successors`,
    /// which must emit the same successor set admission saw:
    ///   successors(state, action, depth_of_successor, emit)
    /// Nondeterministic actions fan out into a per-level candidate set
    /// (deduplicated by fingerprint); the final level is disambiguated
    /// against `target_hint` (defaults to the target's own body, which
    /// engines keep live — a violating or trace-final state was never
    /// expanded, so it never left the frontier). Returns nullopt when
    /// the chain cannot be replayed — a root seeded from outside `inits`
    /// (cross-engine campaign chains), or no candidate matching the
    /// target; callers fall back to partial diagnostics.
    ///
    /// Quiescent callers only.
    template <class SuccFn>
    [[nodiscard]] std::optional<std::vector<S>> reconstruct_path(
      Id target,
      const std::vector<S>& inits,
      SuccFn&& successors,
      const S* target_hint = nullptr) const
    {
      // Walk the chain once: action indices root->target, depths, and
      // whether every body is live.
      std::vector<uint32_t> actions;
      bool bodies_complete = true;
      uint32_t root_depth = 0;
      for (Id cur = target;;)
      {
        const RecordView r = record(cur);
        bodies_complete = bodies_complete && r.body != nullptr;
        if (r.parent == no_parent)
        {
          root_depth = r.depth;
          break;
        }
        actions.push_back(r.action);
        cur = r.parent;
      }
      std::reverse(actions.begin(), actions.end());

      if (bodies_complete)
      {
        std::vector<S> path;
        for (Id cur = target;;)
        {
          const RecordView r = record(cur);
          path.push_back(*r.body);
          if (r.parent == no_parent)
          {
            break;
          }
          cur = r.parent;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }

      // Forward replay. levels[k] holds the candidate states consistent
      // with the first k actions of the chain, deduplicated by
      // fingerprint; parent indices let the winning candidate's concrete
      // path be walked back out.
      struct Node
      {
        S state;
        size_t parent;
      };
      std::vector<std::vector<Node>> levels(1);
      {
        std::unordered_set<uint64_t> seen;
        for (const S& init : inits)
        {
          if (seen.insert(fingerprint(init)).second)
          {
            levels[0].push_back({init, SIZE_MAX});
          }
        }
      }
      for (size_t k = 0; k < actions.size(); ++k)
      {
        std::vector<Node> next;
        std::unordered_set<uint64_t> seen;
        const std::vector<Node>& prev = levels.back();
        for (size_t i = 0; i < prev.size(); ++i)
        {
          successors(
            prev[i].state,
            actions[k],
            root_depth + static_cast<uint32_t>(k) + 1,
            Emit<S>([&](const S& succ) {
              if (seen.insert(fingerprint(succ)).second)
              {
                next.push_back({succ, i});
              }
            }));
        }
        if (next.empty())
        {
          return std::nullopt;
        }
        levels.push_back(std::move(next));
      }

      const S* want = target_hint != nullptr ? target_hint : body(target);
      size_t pick = SIZE_MAX;
      const std::vector<Node>& finals = levels.back();
      if (want != nullptr)
      {
        for (size_t i = 0; i < finals.size() && pick == SIZE_MAX; ++i)
        {
          if (finals[i].state == *want)
          {
            pick = i;
          }
        }
      }
      else if (finals.size() == 1)
      {
        // No disambiguator, but the chain replays deterministically.
        pick = 0;
      }
      if (pick == SIZE_MAX)
      {
        return std::nullopt;
      }

      std::vector<S> path;
      size_t idx = pick;
      for (size_t k = levels.size(); k-- > 0;)
      {
        path.push_back(levels[k][idx].state);
        idx = levels[k][idx].parent;
      }
      std::reverse(path.begin(), path.end());
      return path;
    }

    void clear()
    {
      release_spill();
      for (Shard& shard : shards_)
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.index.clear();
        shard.blocks.clear();
        shard.bodies.clear();
        shard.frontier_bodies.clear();
        shard.count = 0;
        shard.first_unspilled = 0;
        for (auto& c : shard.origin_counts)
        {
          c.store(0, std::memory_order_relaxed);
        }
        shard.index_bytes.store(0, std::memory_order_relaxed);
        shard.heap_arena_bytes.store(0, std::memory_order_relaxed);
        shard.body_bytes.store(0, std::memory_order_relaxed);
        shard.spilled_bytes.store(0, std::memory_order_relaxed);
        shard.rehashes.store(0, std::memory_order_relaxed);
        shard.published.store(0, std::memory_order_release);
      }
    }

  private:
    // 65536 16-byte records = 1 MiB per slab block (a page multiple, so
    // spilled blocks mmap at block-aligned file offsets).
    static constexpr uint32_t block_shift = 16;
    static constexpr uint32_t block_records = uint32_t{1} << block_shift;
    static constexpr uint32_t block_mask = block_records - 1;
    static constexpr size_t block_bytes =
      static_cast<size_t>(block_records) * sizeof(HotRecord);
    /// Estimated resident cost of one frontier body (map node + state).
    static constexpr size_t frontier_body_bytes = sizeof(S) + 48;

    /// One hot-arena slab. `data` points at the heap allocation until the
    /// block is spilled, then at the read-only mapping.
    struct Block
    {
      HotRecord* data = nullptr;
      std::unique_ptr<HotRecord[]> heap;
    };

    struct Shard
    {
      mutable std::mutex mu;
      FlatFpTable index;
      std::vector<Block> blocks;
      uint32_t count = 0;
      // StoreMode::full: bodies[local] for every record (deque: growth
      // never moves existing bodies).
      std::deque<S> bodies;
      // StoreMode::fingerprint_only: bodies for frontier records only.
      // (Node-based map: references stay valid across inserts, so the
      // sequential checker can hold its current state across admissions.)
      std::unordered_map<uint32_t, S> frontier_bodies;
      // first-discovery counts per admission origin (EngineId byte);
      // atomics so origin_count() is wait-free like size().
      std::array<std::atomic<uint64_t>, max_origins> origin_counts{};
      std::atomic<size_t> published{0};
      // Wait-free byte accounting for store_bytes()/spilled_bytes().
      std::atomic<size_t> index_bytes{0};
      std::atomic<size_t> heap_arena_bytes{0};
      std::atomic<size_t> body_bytes{0};
      std::atomic<size_t> spilled_bytes{0};
      std::atomic<uint64_t> rehashes{0};
      // Spill state: blocks [0, first_unspilled) live in the file.
      size_t first_unspilled = 0;
      int spill_fd = -1;
    };

    /// The hot slot for a fresh local index, allocating a new slab when
    /// the previous one is full. Caller holds the shard lock.
    HotRecord& hot_slot(Shard& shard, uint32_t local)
    {
      if ((local & block_mask) == 0)
      {
        Block block;
        block.heap = std::make_unique<HotRecord[]>(block_records);
        block.data = block.heap.get();
        shard.blocks.push_back(std::move(block));
        shard.heap_arena_bytes.fetch_add(
          block_bytes, std::memory_order_relaxed);
      }
      return shard.blocks[local >> block_shift].data[local & block_mask];
    }

    [[nodiscard]] const S* body_ptr(const Shard& shard, uint32_t local) const
    {
      if (!fingerprint_only())
      {
        return &shard.bodies[local];
      }
      const auto it = shard.frontier_bodies.find(local);
      return it != shard.frontier_bodies.end() ? &it->second : nullptr;
    }

    /// Writes one frozen block to the shard's spill file and remaps it
    /// read-only. Returns false (leaving the heap copy in place) on any
    /// I/O failure.
    bool spill_block(Shard& shard, size_t block_idx)
    {
      if (shard.spill_fd < 0)
      {
        std::string tmpl = options_.spill_dir + "/scv-store-XXXXXX";
        const int fd = ::mkstemp(tmpl.data());
        if (fd < 0)
        {
          return false;
        }
        ::unlink(tmpl.c_str()); // anonymous: the fd is the only handle
        shard.spill_fd = fd;
      }
      Block& block = shard.blocks[block_idx];
      const auto offset =
        static_cast<off_t>(shard.spilled_bytes.load(std::memory_order_relaxed));
      size_t written = 0;
      const char* src = reinterpret_cast<const char*>(block.heap.get());
      while (written < block_bytes)
      {
        const ssize_t n = ::pwrite(
          shard.spill_fd,
          src + written,
          block_bytes - written,
          offset + static_cast<off_t>(written));
        if (n <= 0)
        {
          return false;
        }
        written += static_cast<size_t>(n);
      }
      void* mapped = ::mmap(
        nullptr, block_bytes, PROT_READ, MAP_SHARED, shard.spill_fd, offset);
      if (mapped == MAP_FAILED)
      {
        return false;
      }
      block.data = static_cast<HotRecord*>(mapped);
      block.heap.reset();
      shard.heap_arena_bytes.fetch_sub(
        block_bytes, std::memory_order_relaxed);
      shard.spilled_bytes.fetch_add(block_bytes, std::memory_order_relaxed);
      return true;
    }

    void release_spill()
    {
      for (Shard& shard : shards_)
      {
        for (size_t b = 0; b < shard.first_unspilled; ++b)
        {
          ::munmap(shard.blocks[b].data, block_bytes);
          shard.blocks[b].data = nullptr;
        }
        if (shard.spill_fd >= 0)
        {
          ::close(shard.spill_fd);
          shard.spill_fd = -1;
        }
      }
    }

    StoreOptions options_;
    std::vector<Shard> shards_;
    uint64_t shard_mask_ = 0;
    unsigned shard_bits_ = 0;
  };
}
