// Work-stealing extension of the exploration core's worker model.
//
// The fork-join WorkerPool splits *pre-partitioned* work (a frontier, a
// seed range) across workers. Depth-first search has no frontier to
// partition up front: the work materializes as the search descends, and
// naively running N copies of the same DFS makes every worker walk the
// same tree. The classic fix — TLC-style parallel explicit-state search,
// Cilk-style task scheduling — is work stealing: each worker owns a deque
// of pending subtrees, treats its bottom as its DFS stack (push and pop
// newest), and when it runs dry steals the OLDEST item from the top of a
// victim's deque. For DFS the oldest item is the frame closest to the
// root, i.e. the largest unexplored subtree, so a steal buys the thief the
// most work per synchronization.
//
// The deques here are mutex-guarded rather than lock-free Chase-Lev:
// steals only happen when a worker is idle, so in steady state each deque
// sees exactly one uncontended lock per push/pop — and a mutex keeps the
// structure trivially correct under ThreadSanitizer, which gates CI.
//
// This header is engine-agnostic (the trace validator's parallel DFS uses
// it today; the checker's or simulator's future depth-first modes can
// adopt it unchanged) and composes with WorkerPool: the pool spawns and
// joins the workers, the deques move work between them.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "spec/worker_pool.h"

namespace scv::spec
{
  /// One worker's deque of stealable work items. Owner discipline:
  /// push_bottom/pop_bottom (LIFO — the owner's DFS stack). Thief
  /// discipline: steal_top (FIFO — the shallowest, largest subtree).
  template <class T>
  class StealableDeque
  {
  public:
    void push_bottom(T item)
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }

    bool pop_bottom(T& out)
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty())
      {
        return false;
      }
      out = std::move(items_.back());
      items_.pop_back();
      return true;
    }

    bool steal_top(T& out)
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty())
      {
        return false;
      }
      out = std::move(items_.front());
      items_.pop_front();
      return true;
    }

  private:
    std::mutex mu_;
    std::deque<T> items_;
  };

  /// The per-worker deque array plus the steal policy: worker w pops its
  /// own deque first, then makes one round of steal attempts over the
  /// victims in round-robin order starting at w + 1 (no randomness, so a
  /// run's steal pattern is at least schedule-deterministic).
  template <class T>
  class WorkStealingDeques
  {
  public:
    explicit WorkStealingDeques(unsigned workers) : deques_(workers) {}

    [[nodiscard]] unsigned size() const
    {
      return static_cast<unsigned>(deques_.size());
    }

    void push(unsigned w, T item)
    {
      deques_[w].push_bottom(std::move(item));
    }

    /// Own-deque pop, else one full round of steal attempts. Returns
    /// false when every deque came up empty — the caller decides whether
    /// that means termination or a yield-and-retry (other workers may
    /// still be expanding). `stole` reports whether the item came from a
    /// victim's deque.
    bool pop_or_steal(unsigned w, T& out, bool& stole)
    {
      stole = false;
      if (deques_[w].pop_bottom(out))
      {
        return true;
      }
      const unsigned n = size();
      for (unsigned k = 1; k < n; ++k)
      {
        if (deques_[(w + k) % n].steal_top(out))
        {
          stole = true;
          return true;
        }
      }
      return false;
    }

  private:
    std::vector<StealableDeque<T>> deques_;
  };
}
