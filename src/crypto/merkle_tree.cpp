#include "crypto/merkle_tree.h"

#include "util/check.h"

namespace scv::crypto
{
  namespace
  {
    /// Largest power of two strictly less than n (n >= 2), per RFC 6962's
    /// split rule, which keeps the tree shape canonical for any size.
    size_t split_point(size_t n)
    {
      size_t k = 1;
      while (k * 2 < n)
      {
        k *= 2;
      }
      return k;
    }
  }

  Digest MerkleTree::combine(const Digest& left, const Digest& right)
  {
    Sha256 h;
    const uint8_t tag = 0x01; // interior-node domain separation
    h.update(&tag, 1);
    h.update(left.data(), left.size());
    h.update(right.data(), right.size());
    return h.finalize();
  }

  size_t MerkleTree::append(const Digest& leaf)
  {
    leaves_.push_back(leaf);
    return leaves_.size() - 1;
  }

  Digest MerkleTree::subtree_root(size_t begin, size_t end) const
  {
    const size_t n = end - begin;
    if (n == 1)
    {
      return leaves_[begin];
    }
    const size_t k = split_point(n);
    return combine(
      subtree_root(begin, begin + k), subtree_root(begin + k, end));
  }

  Digest MerkleTree::root() const
  {
    if (leaves_.empty())
    {
      return sha256("");
    }
    return subtree_root(0, leaves_.size());
  }

  void MerkleTree::collect_path(
    size_t begin, size_t end, size_t index, Path& out) const
  {
    const size_t n = end - begin;
    if (n == 1)
    {
      return;
    }
    const size_t k = split_point(n);
    if (index < begin + k)
    {
      collect_path(begin, begin + k, index, out);
      out.push_back({subtree_root(begin + k, end), false});
    }
    else
    {
      collect_path(begin + k, end, index, out);
      out.push_back({subtree_root(begin, begin + k), true});
    }
  }

  Path MerkleTree::path(size_t index) const
  {
    SCV_CHECK(index < leaves_.size());
    Path out;
    collect_path(0, leaves_.size(), index, out);
    return out;
  }

  void MerkleTree::truncate(size_t new_size)
  {
    SCV_CHECK(new_size <= leaves_.size());
    leaves_.resize(new_size);
  }

  bool MerkleTree::verify_path(
    const Digest& leaf, const Path& path, const Digest& expected_root)
  {
    Digest running = leaf;
    for (const auto& step : path)
    {
      running = step.sibling_on_left ? combine(step.sibling, running) :
                                       combine(running, step.sibling);
    }
    return running == expected_root;
  }
}
