// Append-only Merkle tree over ledger entries (§2.1).
//
// CCF's signature transactions embed the root of a Merkle tree built over
// the whole log so far. This implementation supports O(log n) incremental
// appends, root extraction at any point, audit (inclusion) paths, and
// truncation back to a shorter length (needed when a follower rolls back a
// conflicting suffix).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"

namespace scv::crypto
{
  /// One step of an inclusion proof: the sibling digest and whether it sits
  /// to the left of the running hash.
  struct PathStep
  {
    Digest sibling;
    bool sibling_on_left;

    bool operator==(const PathStep&) const = default;
  };

  using Path = std::vector<PathStep>;

  class MerkleTree
  {
  public:
    MerkleTree() = default;

    /// Rebuilds a tree from previously extracted leaves (snapshot install:
    /// a joiner reconstructs the ledger tree without the entry bodies).
    explicit MerkleTree(std::vector<Digest> leaves) : leaves_(std::move(leaves))
    {}

    /// Appends a leaf digest; returns the (0-based) leaf index.
    size_t append(const Digest& leaf);

    /// All leaf digests appended so far, in order.
    [[nodiscard]] const std::vector<Digest>& leaves() const
    {
      return leaves_;
    }

    /// Root over all leaves appended so far. Root of the empty tree is the
    /// hash of the empty string, matching an empty ledger.
    [[nodiscard]] Digest root() const;

    [[nodiscard]] size_t size() const
    {
      return leaves_.size();
    }

    /// Inclusion proof for the leaf at `index` against the current root.
    [[nodiscard]] Path path(size_t index) const;

    /// Drops all leaves at and after `new_size`.
    void truncate(size_t new_size);

    /// Verifies an inclusion proof.
    static bool verify_path(
      const Digest& leaf, const Path& path, const Digest& expected_root);

    /// Hash of an interior node from its two children.
    static Digest combine(const Digest& left, const Digest& right);

  private:
    /// Recomputes the root over leaves_[begin, end).
    [[nodiscard]] Digest subtree_root(size_t begin, size_t end) const;

    void collect_path(
      size_t begin, size_t end, size_t index, Path& out) const;

    std::vector<Digest> leaves_;
  };
}
