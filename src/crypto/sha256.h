// From-scratch SHA-256 (FIPS 180-4).
//
// CCF's ledger integrity rests on a Merkle tree of SHA-256 digests whose
// root is embedded in signature transactions (§2.1). This is a plain
// software implementation; cryptographic hardware acceleration is
// irrelevant to protocol behavior.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scv::crypto
{
  using Digest = std::array<uint8_t, 32>;

  /// Incremental SHA-256 hasher.
  class Sha256
  {
  public:
    Sha256();

    void update(const uint8_t* data, size_t size);
    void update(std::string_view s);
    void update(const std::vector<uint8_t>& data);

    /// Finalizes and returns the digest. The hasher must not be reused
    /// afterwards without reset().
    Digest finalize();

    void reset();

  private:
    void process_block(const uint8_t* block);

    std::array<uint32_t, 8> state_{};
    std::array<uint8_t, 64> buffer_{};
    size_t buffer_len_ = 0;
    uint64_t total_len_ = 0;
  };

  Digest sha256(const uint8_t* data, size_t size);
  Digest sha256(std::string_view s);
  Digest sha256(const std::vector<uint8_t>& data);

  std::string digest_to_hex(const Digest& d);
}
