// Mock node signer for signature transactions.
//
// The paper's protocol only depends on the *placement* of signatures in the
// log, not on the strength of the signature scheme, so signing here is
// HMAC-SHA-256 under a per-node key derived from the node id. A Verifier
// holding the same derivation can check any node's signature, playing the
// role of a public-key directory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace scv::crypto
{
  using Signature = std::vector<uint8_t>;

  class Signer
  {
  public:
    explicit Signer(uint64_t node_id);

    [[nodiscard]] Signature sign(const Digest& digest) const;

    [[nodiscard]] uint64_t node_id() const
    {
      return node_id_;
    }

  private:
    uint64_t node_id_;
    std::vector<uint8_t> key_;
  };

  /// Checks that `sig` is node `node_id`'s signature over `digest`.
  bool verify_signature(
    uint64_t node_id, const Digest& digest, const Signature& sig);
}
