#include "crypto/signer.h"

namespace scv::crypto
{
  namespace
  {
    std::vector<uint8_t> derive_key(uint64_t node_id)
    {
      std::string seed = "scv-node-key-" + std::to_string(node_id);
      const Digest d = sha256(seed);
      return {d.begin(), d.end()};
    }
  }

  Signer::Signer(uint64_t node_id) :
    node_id_(node_id),
    key_(derive_key(node_id))
  {}

  Signature Signer::sign(const Digest& digest) const
  {
    const Digest mac = hmac_sha256(key_, digest.data(), digest.size());
    return {mac.begin(), mac.end()};
  }

  bool verify_signature(
    uint64_t node_id, const Digest& digest, const Signature& sig)
  {
    const Signer expected(node_id);
    return expected.sign(digest) == sig;
  }
}
