#include "crypto/hmac.h"

namespace scv::crypto
{
  Digest hmac_sha256(
    const std::vector<uint8_t>& key, const uint8_t* data, size_t size)
  {
    constexpr size_t block_size = 64;

    std::vector<uint8_t> k = key;
    if (k.size() > block_size)
    {
      const Digest kd = sha256(k);
      k.assign(kd.begin(), kd.end());
    }
    k.resize(block_size, 0);

    std::vector<uint8_t> ipad(block_size);
    std::vector<uint8_t> opad(block_size);
    for (size_t i = 0; i < block_size; ++i)
    {
      ipad[i] = k[i] ^ 0x36;
      opad[i] = k[i] ^ 0x5c;
    }

    Sha256 inner;
    inner.update(ipad);
    inner.update(data, size);
    const Digest inner_digest = inner.finalize();

    Sha256 outer;
    outer.update(opad);
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.finalize();
  }

  Digest hmac_sha256(const std::vector<uint8_t>& key, std::string_view msg)
  {
    return hmac_sha256(
      key, reinterpret_cast<const uint8_t*>(msg.data()), msg.size());
  }
}
