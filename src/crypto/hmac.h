// HMAC-SHA-256 (RFC 2104). Backs the mock ledger signer.
#pragma once

#include <string_view>
#include <vector>

#include "crypto/sha256.h"

namespace scv::crypto
{
  Digest hmac_sha256(
    const std::vector<uint8_t>& key, const uint8_t* data, size_t size);

  Digest hmac_sha256(const std::vector<uint8_t>& key, std::string_view msg);
}
